#include "vm/regcompile.hpp"

#include <cmath>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>

#include "support/timer.hpp"
#include "vm/intrinsics.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm::regir {

namespace {

// Rank-2 operand packing (20 bits per register id).
constexpr std::int64_t kRegFieldBits = 20;
constexpr std::int64_t kRegFieldMask = (1 << kRegFieldBits) - 1;

bool is_branch(ROp op) {
  switch (op) {
    case ROp::JMP:
    case ROp::JMPB:
    case ROp::JZ_I4:
    case ROp::JNZ_I4:
    case ROp::JZ_I8:
    case ROp::JNZ_I8:
    case ROp::JZ_REF:
    case ROp::JNZ_REF:
    case ROp::JEQ_I4:
    case ROp::JNE_I4:
    case ROp::JLT_I4:
    case ROp::JLE_I4:
    case ROp::JGT_I4:
    case ROp::JGE_I4:
    case ROp::JEQ_I8:
    case ROp::JNE_I8:
    case ROp::JLT_I8:
    case ROp::JLE_I8:
    case ROp::JGT_I8:
    case ROp::JGE_I8:
    case ROp::JEQ_R4:
    case ROp::JNE_R4:
    case ROp::JLT_R4:
    case ROp::JLE_R4:
    case ROp::JGT_R4:
    case ROp::JGE_R4:
    case ROp::JEQ_R8:
    case ROp::JNE_R8:
    case ROp::JLT_R8:
    case ROp::JLE_R8:
    case ROp::JGT_R8:
    case ROp::JGE_R8:
    case ROp::JEQ_REF:
    case ROp::JNE_REF:
    case ROp::JEQI_I4:
    case ROp::JNEI_I4:
    case ROp::JLTI_I4:
    case ROp::JLEI_I4:
    case ROp::JGTI_I4:
    case ROp::JGEI_I4:
    case ROp::JLT_LEN:
      return true;
    default:
      return false;
  }
}

bool is_block_end(ROp op) {
  return is_branch(op) || op == ROp::RET_R || op == ROp::THROW_R ||
         op == ROp::LEAVE_R || op == ROp::ENDFINALLY_R;
}

/// Ops with no side effects whose result may be dead-code-eliminated.
bool is_pure(ROp op) {
  switch (op) {
    case ROp::MOV:
    case ROp::LDI:
    case ROp::ADD_I4: case ROp::SUB_I4: case ROp::MUL_I4: case ROp::NEG_I4:
    case ROp::ADD_I8: case ROp::SUB_I8: case ROp::MUL_I8: case ROp::NEG_I8:
    case ROp::ADD_R4: case ROp::SUB_R4: case ROp::MUL_R4: case ROp::DIV_R4:
    case ROp::REM_R4: case ROp::NEG_R4:
    case ROp::ADD_R8: case ROp::SUB_R8: case ROp::MUL_R8: case ROp::DIV_R8:
    case ROp::REM_R8: case ROp::NEG_R8:
    case ROp::ADDI_I4: case ROp::SUBI_I4: case ROp::MULI_I4:
    case ROp::ADDI_I8: case ROp::SUBI_I8: case ROp::MULI_I8:
    case ROp::ADDI_R8: case ROp::MULI_R8:
    case ROp::AND_I4: case ROp::OR_I4: case ROp::XOR_I4: case ROp::NOT_I4:
    case ROp::SHL_I4: case ROp::SHR_I4: case ROp::SHRU_I4:
    case ROp::AND_I8: case ROp::OR_I8: case ROp::XOR_I8: case ROp::NOT_I8:
    case ROp::SHL_I8: case ROp::SHR_I8: case ROp::SHRU_I8:
    case ROp::SHLI_I4: case ROp::SHRI_I4: case ROp::SHLI_I8: case ROp::SHRI_I8:
    case ROp::ANDI_I4:
    case ROp::CEQ_I4: case ROp::CGT_I4: case ROp::CLT_I4:
    case ROp::CEQ_I8: case ROp::CGT_I8: case ROp::CLT_I8:
    case ROp::CEQ_R4: case ROp::CGT_R4: case ROp::CLT_R4:
    case ROp::CEQ_R8: case ROp::CGT_R8: case ROp::CLT_R8:
    case ROp::CEQ_REF:
    case ROp::CV_I4_I8: case ROp::CV_I4_R4: case ROp::CV_I4_R8:
    case ROp::CV_I8_I4: case ROp::CV_I8_R4: case ROp::CV_I8_R8:
    case ROp::CV_R4_I4: case ROp::CV_R4_I8: case ROp::CV_R4_R8:
    case ROp::CV_R8_I4: case ROp::CV_R8_I8: case ROp::CV_R8_R4:
    case ROp::SEXT8: case ROp::ZEXT8: case ROp::SEXT16: case ROp::ZEXT16:
      return true;
    default:
      return false;
  }
}

/// Operand roles for copy propagation / liveness.
struct Operands {
  std::int32_t uses[4];
  int nuses = 0;
  std::int32_t def = -1;  // register defined, -1 if none
};

Operands operands_of(const RInstr& in, const std::vector<std::int32_t>& pool) {
  Operands o{};
  auto use = [&](std::int32_t r) {
    if (r >= 0) o.uses[o.nuses++] = r;
  };
  switch (in.op) {
    case ROp::NOP_R:
    case ROp::SAFEPOINT:
    case ROp::ENDFINALLY_R:
    case ROp::LEAVE_R:
    case ROp::JMP:
    case ROp::JMPB:
      break;
    case ROp::MOV:
    case ROp::MEMLD:
    case ROp::MEMST:
      o.def = in.d;
      use(in.a);
      break;
    case ROp::LDI:
      o.def = in.d;
      break;
    case ROp::LDSTR_R:
    case ROp::NEWOBJ_R:
      o.def = in.d;
      break;
    case ROp::RET_R:
    case ROp::THROW_R:
      use(in.a);
      break;
    case ROp::JZ_I4:
    case ROp::JNZ_I4:
    case ROp::JZ_I8:
    case ROp::JNZ_I8:
    case ROp::JZ_REF:
    case ROp::JNZ_REF:
      use(in.a);
      break;
    case ROp::JEQI_I4:
    case ROp::JNEI_I4:
    case ROp::JLTI_I4:
    case ROp::JLEI_I4:
    case ROp::JGTI_I4:
    case ROp::JGEI_I4:
      use(in.a);
      break;
    case ROp::JEQ_I4: case ROp::JNE_I4: case ROp::JLT_I4:
    case ROp::JLE_I4: case ROp::JGT_I4: case ROp::JGE_I4:
    case ROp::JEQ_I8: case ROp::JNE_I8: case ROp::JLT_I8:
    case ROp::JLE_I8: case ROp::JGT_I8: case ROp::JGE_I8:
    case ROp::JEQ_R4: case ROp::JNE_R4: case ROp::JLT_R4:
    case ROp::JLE_R4: case ROp::JGT_R4: case ROp::JGE_R4:
    case ROp::JEQ_R8: case ROp::JNE_R8: case ROp::JLT_R8:
    case ROp::JLE_R8: case ROp::JGT_R8: case ROp::JGE_R8:
    case ROp::JEQ_REF: case ROp::JNE_REF:
      use(in.a);
      use(in.b);
      break;
    case ROp::LDSFLD_R:
      o.def = in.d;  // a/b are class/field ids, not registers
      break;
    case ROp::CHK_BOUNDS:
    case ROp::JLT_LEN:
      use(in.a);
      use(in.b);
      break;
    case ROp::CALL_R:
    case ROp::CALLINTR_R: {
      o.def = in.d;
      // Call arguments come from the pool; handled separately by the passes
      // (they rewrite/mark pool entries directly).
      (void)pool;
      break;
    }
    case ROp::STFLD_R:
      use(in.a);
      use(in.d);  // d = source
      break;
    case ROp::STSFLD_R:
      use(in.d);
      break;
    case ROp::STELEM_I4: case ROp::STELEM_I8: case ROp::STELEM_R4:
    case ROp::STELEM_R8: case ROp::STELEM_REF:
    case ROp::STELEMU_I4: case ROp::STELEMU_I8: case ROp::STELEMU_R4:
    case ROp::STELEMU_R8: case ROp::STELEMU_REF:
      use(in.a);
      use(in.b);
      use(in.d);  // d = source
      break;
    case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
    case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW:
      o.def = in.d;
      use(in.a);
      use(in.b);
      use(static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask));
      break;
    case ROp::STEL2_I4: case ROp::STEL2_I8: case ROp::STEL2_R4:
    case ROp::STEL2_R8: case ROp::STEL2_REF: case ROp::STEL2_SLOW:
      use(in.a);
      use(in.b);
      use(static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask));
      use(static_cast<std::int32_t>((in.imm.i64 >> kRegFieldBits) &
                                    kRegFieldMask));
      break;
    default:
      // Generic three-address shape: d <- op(a, b).
      o.def = in.d;
      use(in.a);
      if (in.b >= 0 && in.op != ROp::NEWARR_R && in.op != ROp::LDFLD_R &&
          in.op != ROp::BOX_R && in.op != ROp::UNBOX_R &&
          in.op != ROp::NEWMAT_R) {
        use(in.b);
      }
      if (in.op == ROp::NEWMAT_R) {
        use(in.b);  // cols register (excluded above as a non-register field)
      }
      break;
  }
  return o;
}

struct ConstVal {
  std::uint64_t raw;
  ValType type;
};

class Compiler {
 public:
  Compiler(Module& mod, const MethodDef& m, const EngineFlags& flags)
      : mod_(mod), m_(m), flags_(flags) {}

  RCode run() {
    // Per-pass timing feeds the paper's JIT-quality analysis (Tables 5-8):
    // a profile's pass mix is exactly what differentiates the engines.
    const bool timed = telemetry::enabled();
    std::int64_t t = timed ? support::now_ns() : 0;
    auto mark = [&](telemetry::JitPass pass) {
      if (!timed) return;
      const std::int64_t now = support::now_ns();
      telemetry::record_jit_pass(m_.id, pass, now - t);
      t = now;
    };
    alloc_slot_regs();
    find_labels();
    translate();
    mark(telemetry::JitPass::Translate);
    if (flags_.copy_propagation) {
      optimize_blocks();
      optimize_blocks();  // second round cleans copies exposed by DCE
    }
    mark(telemetry::JitPass::Optimize);
    if (flags_.bounds_check_elim) eliminate_bounds_checks();
    mark(telemetry::JitPass::BoundsCheckElim);
    compact();
    mark(telemetry::JitPass::Compact);
    finalize();
    mark(telemetry::JitPass::Finalize);
    return std::move(rc_);
  }

 private:
  // ---- register allocation ----
  std::int32_t new_reg(ValType t) {
    rc_.reg_types.push_back(t);
    return static_cast<std::int32_t>(rc_.reg_types.size()) - 1;
  }

  void alloc_slot_regs() {
    for (std::size_t i = 0; i < m_.frame_slots(); ++i) {
      new_reg(m_.slot_type(i));
    }
    rc_.slot_regs = static_cast<std::int32_t>(m_.frame_slots());
  }

  std::int32_t sreg(std::int32_t depth, ValType t) {
    const auto key = (static_cast<std::int64_t>(depth) << 4) |
                     static_cast<std::int64_t>(t);
    auto it = stack_regs_.find(key);
    if (it != stack_regs_.end()) return it->second;
    const std::int32_t r = new_reg(t);
    stack_regs_.emplace(key, r);
    return r;
  }

  std::int32_t slot_reg(std::int32_t slot) { return slot; }
  bool spilled(std::int32_t slot) const {
    return slot >= flags_.enregister_limit;
  }

  // ---- emission ----
  RInstr& emit(ROp op, std::int32_t d = -1, std::int32_t a = -1,
               std::int32_t b = -1) {
    RInstr in;
    in.op = op;
    in.d = d;
    in.a = a;
    in.b = b;
    in.il_pc = cur_il_;
    out_.push_back(in);
    return out_.back();
  }

  void find_labels() {
    labels_.assign(m_.code.size() + 1, false);
    for (const Instr& in : m_.code) {
      switch (in.op) {
        case Op::BR: case Op::BRTRUE: case Op::BRFALSE:
        case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BLE:
        case Op::BGT: case Op::BGE: case Op::LEAVE:
          labels_[static_cast<std::size_t>(in.a)] = true;
          break;
        default:
          break;
      }
    }
    for (const ExHandler& h : m_.handlers) {
      labels_[static_cast<std::size_t>(h.handler)] = true;
    }
  }

  // ---- constant tracking (per stack depth, reset at labels) ----
  std::optional<ConstVal> const_at(std::size_t depth) const {
    return depth < consts_.size() ? consts_[depth] : std::nullopt;
  }
  void set_const(std::size_t depth, std::optional<ConstVal> v) {
    if (consts_.size() <= depth) consts_.resize(depth + 1);
    consts_[depth] = v;
  }
  void reset_consts() { consts_.clear(); }

  // ---- main translation loop ----
  void translate();
  void translate_one(std::int32_t pc, const Instr& in);

  // ---- passes ----
  void optimize_blocks();
  void eliminate_bounds_checks();
  void compact();
  void finalize();

  std::vector<std::int32_t> block_leaders() const;
  std::vector<std::int32_t> live_out_stack_regs(std::size_t block_end) const;

  Module& mod_;
  const MethodDef& m_;
  EngineFlags flags_;
  RCode rc_;

  std::vector<RInstr> out_;
  std::vector<std::int32_t> il_start_;  // IL pc -> out_ index (pre-compaction)
  std::map<std::int64_t, std::int32_t> stack_regs_;
  std::vector<bool> labels_;
  std::vector<std::optional<ConstVal>> consts_;
  std::int32_t cur_il_ = 0;
  bool skip_next_ = false;  // fused compare+branch consumed the next IL op
};

// --------------------------------------------------------------------------

void Compiler::translate() {
  il_start_.assign(m_.code.size() + 1, -1);
  for (std::size_t pc = 0; pc < m_.code.size(); ++pc) {
    il_start_[pc] = static_cast<std::int32_t>(out_.size());
    cur_il_ = static_cast<std::int32_t>(pc);
    if (labels_[pc]) reset_consts();
    if (skip_next_) {
      skip_next_ = false;
      continue;
    }
    if (!m_.reachable.empty() && !m_.reachable[pc]) continue;
    translate_one(static_cast<std::int32_t>(pc), m_.code[pc]);
  }
  il_start_[m_.code.size()] = static_cast<std::int32_t>(out_.size());
}

void Compiler::translate_one(std::int32_t pc, const Instr& in) {
  const auto& st = m_.stack_in[static_cast<std::size_t>(pc)];
  const auto d = static_cast<std::int32_t>(st.size());
  auto stk = [&](std::int32_t i) { return st[static_cast<std::size_t>(i)]; };

  switch (in.op) {
    case Op::NOP:
      break;

    case Op::LDC_I4: {
      Slot s = Slot::from_i32(static_cast<std::int32_t>(in.imm.i64));
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::I32));
      r.imm.i64 = static_cast<std::int64_t>(s.raw);
      set_const(static_cast<std::size_t>(d), ConstVal{s.raw, ValType::I32});
      break;
    }
    case Op::LDC_I8: {
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::I64));
      r.imm.i64 = in.imm.i64;
      set_const(static_cast<std::size_t>(d),
                ConstVal{static_cast<std::uint64_t>(in.imm.i64), ValType::I64});
      break;
    }
    case Op::LDC_R4: {
      Slot s = Slot::from_f32(static_cast<float>(in.imm.f64));
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::F32));
      r.imm.i64 = static_cast<std::int64_t>(s.raw);
      set_const(static_cast<std::size_t>(d), ConstVal{s.raw, ValType::F32});
      break;
    }
    case Op::LDC_R8: {
      Slot s = Slot::from_f64(in.imm.f64);
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::F64));
      r.imm.i64 = static_cast<std::int64_t>(s.raw);
      set_const(static_cast<std::size_t>(d), ConstVal{s.raw, ValType::F64});
      break;
    }
    case Op::LDNULL: {
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::Ref));
      r.imm.i64 = 0;
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    }
    case Op::LDSTR:
      emit(ROp::LDSTR_R, sreg(d, ValType::Ref), in.a);
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;

    case Op::LDLOC:
    case Op::LDARG: {
      const std::int32_t slot =
          in.op == Op::LDLOC ? in.a + static_cast<std::int32_t>(m_.num_args())
                             : in.a;
      emit(spilled(slot) ? ROp::MEMLD : ROp::MOV, sreg(d, in.type),
           slot_reg(slot))
          .flags = spilled(slot) ? RInstr::kPinned : 0;
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    }
    case Op::STLOC:
    case Op::STARG: {
      const std::int32_t slot =
          in.op == Op::STLOC ? in.a + static_cast<std::int32_t>(m_.num_args())
                             : in.a;
      emit(spilled(slot) ? ROp::MEMST : ROp::MOV, slot_reg(slot),
           sreg(d - 1, in.type))
          .flags = spilled(slot) ? RInstr::kPinned : 0;
      break;
    }
    case Op::DUP:
      emit(ROp::MOV, sreg(d, in.type), sreg(d - 1, in.type));
      set_const(static_cast<std::size_t>(d),
                const_at(static_cast<std::size_t>(d - 1)));
      break;
    case Op::POP:
      break;

    case Op::ADD:
    case Op::SUB:
    case Op::MUL:
    case Op::DIV:
    case Op::REM: {
      const ValType t = in.type;
      const std::int32_t ra = sreg(d - 2, t);
      const std::int32_t rb = sreg(d - 1, t);
      const std::int32_t rd = sreg(d - 2, t);
      const auto cb = const_at(static_cast<std::size_t>(d - 1));
      const bool is_int = t == ValType::I32 || t == ValType::I64;

      auto base3 = [&](ROp i4, ROp i8, ROp r4, ROp r8) {
        return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
               : t == ValType::F32 ? r4 : r8;
      };

      bool emitted = false;
      if (cb.has_value() && flags_.imm_operands) {
        // Immediate-operand instruction selection, gated per-op by the
        // profile (the "different JITs optimize different operations"
        // result in the paper's §5).
        ROp iop = ROp::NOP_R;
        if (t == ValType::I32 || t == ValType::I64) {
          const bool i4 = t == ValType::I32;
          switch (in.op) {
            case Op::ADD: iop = i4 ? ROp::ADDI_I4 : ROp::ADDI_I8; break;
            case Op::SUB: iop = i4 ? ROp::SUBI_I4 : ROp::SUBI_I8; break;
            case Op::MUL:
              if (flags_.mul_imm_fusion) iop = i4 ? ROp::MULI_I4 : ROp::MULI_I8;
              break;
            case Op::DIV:
              if (flags_.div_imm_fusion) iop = i4 ? ROp::DIVI_I4 : ROp::DIVI_I8;
              break;
            case Op::REM:
              if (flags_.div_imm_fusion) iop = i4 ? ROp::REMI_I4 : ROp::REMI_I8;
              break;
            default: break;
          }
        } else if (t == ValType::F64) {
          if (in.op == Op::ADD) iop = ROp::ADDI_R8;
          if (in.op == Op::MUL && flags_.mul_imm_fusion) iop = ROp::MULI_R8;
        }
        if (iop != ROp::NOP_R) {
          RInstr& r = emit(iop, rd, ra);
          r.imm.i64 = static_cast<std::int64_t>(cb->raw);
          emitted = true;
        } else if (is_int && (in.op == Op::DIV || in.op == Op::REM) &&
                   flags_.redundant_const_store) {
          // The CLR 1.1 quirk from Table 6: the divisor constant takes a
          // round trip through a temporary before the divide.
          const std::int32_t t1 = new_reg(t);
          const std::int32_t t2 = new_reg(t);
          RInstr& l = emit(ROp::LDI, t1);
          l.imm.i64 = static_cast<std::int64_t>(cb->raw);
          l.flags = RInstr::kPinned;
          emit(ROp::MOV, t2, t1).flags = RInstr::kPinned;
          emit(in.op == Op::DIV ? base3(ROp::DIV_I4, ROp::DIV_I8, ROp::DIV_R4,
                                        ROp::DIV_R8)
                                : base3(ROp::REM_I4, ROp::REM_I8, ROp::REM_R4,
                                        ROp::REM_R8),
               rd, ra, t2);
          emitted = true;
        }
      }
      if (!emitted) {
        ROp op3;
        switch (in.op) {
          case Op::ADD: op3 = base3(ROp::ADD_I4, ROp::ADD_I8, ROp::ADD_R4, ROp::ADD_R8); break;
          case Op::SUB: op3 = base3(ROp::SUB_I4, ROp::SUB_I8, ROp::SUB_R4, ROp::SUB_R8); break;
          case Op::MUL: op3 = base3(ROp::MUL_I4, ROp::MUL_I8, ROp::MUL_R4, ROp::MUL_R8); break;
          case Op::DIV: op3 = base3(ROp::DIV_I4, ROp::DIV_I8, ROp::DIV_R4, ROp::DIV_R8); break;
          default: op3 = base3(ROp::REM_I4, ROp::REM_I8, ROp::REM_R4, ROp::REM_R8); break;
        }
        emit(op3, rd, ra, rb);
      }
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::NEG: {
      const ValType t = in.type;
      const ROp op = t == ValType::I32 ? ROp::NEG_I4
                     : t == ValType::I64 ? ROp::NEG_I8
                     : t == ValType::F32 ? ROp::NEG_R4 : ROp::NEG_R8;
      emit(op, sreg(d - 1, t), sreg(d - 1, t));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    }

    case Op::AND:
    case Op::OR:
    case Op::XOR: {
      const bool i4 = in.type == ValType::I32;
      const auto ca = const_at(static_cast<std::size_t>(d - 1));
      if (in.op == Op::AND && i4 && ca.has_value() && flags_.imm_operands) {
        RInstr& r = emit(ROp::ANDI_I4, sreg(d - 2, in.type), sreg(d - 2, in.type));
        r.imm.i64 = static_cast<std::int64_t>(ca->raw);
      } else {
        ROp op = in.op == Op::AND ? (i4 ? ROp::AND_I4 : ROp::AND_I8)
                 : in.op == Op::OR ? (i4 ? ROp::OR_I4 : ROp::OR_I8)
                                   : (i4 ? ROp::XOR_I4 : ROp::XOR_I8);
        emit(op, sreg(d - 2, in.type), sreg(d - 2, in.type), sreg(d - 1, in.type));
      }
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::NOT: {
      const bool i4 = in.type == ValType::I32;
      emit(i4 ? ROp::NOT_I4 : ROp::NOT_I8, sreg(d - 1, in.type),
           sreg(d - 1, in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    }
    case Op::SHL:
    case Op::SHR:
    case Op::SHR_UN: {
      const bool i4 = in.type == ValType::I32;
      const auto ca = const_at(static_cast<std::size_t>(d - 1));
      if (ca.has_value() && flags_.imm_operands && in.op != Op::SHR_UN) {
        const ROp iop = in.op == Op::SHL ? (i4 ? ROp::SHLI_I4 : ROp::SHLI_I8)
                                         : (i4 ? ROp::SHRI_I4 : ROp::SHRI_I8);
        RInstr& r = emit(iop, sreg(d - 2, in.type), sreg(d - 2, in.type));
        r.imm.i64 = static_cast<std::int64_t>(ca->raw);
      } else {
        ROp op = in.op == Op::SHL ? (i4 ? ROp::SHL_I4 : ROp::SHL_I8)
                 : in.op == Op::SHR ? (i4 ? ROp::SHR_I4 : ROp::SHR_I8)
                                    : (i4 ? ROp::SHRU_I4 : ROp::SHRU_I8);
        emit(op, sreg(d - 2, in.type), sreg(d - 2, in.type),
             sreg(d - 1, ValType::I32));
      }
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }

    case Op::CEQ:
    case Op::CGT:
    case Op::CLT: {
      const ValType t = in.type;
      auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8) {
        return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
               : t == ValType::F32 ? r4
               : t == ValType::F64 ? r8 : ROp::CEQ_REF;
      };
      ROp op = in.op == Op::CEQ
                   ? pick(ROp::CEQ_I4, ROp::CEQ_I8, ROp::CEQ_R4, ROp::CEQ_R8)
               : in.op == Op::CGT
                   ? pick(ROp::CGT_I4, ROp::CGT_I8, ROp::CGT_R4, ROp::CGT_R8)
                   : pick(ROp::CLT_I4, ROp::CLT_I8, ROp::CLT_R4, ROp::CLT_R8);
      emit(op, sreg(d - 2, ValType::I32), sreg(d - 2, t), sreg(d - 1, t));
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }

    case Op::BR:
      emit(ROp::JMP, in.a);
      reset_consts();
      break;
    case Op::BRTRUE:
    case Op::BRFALSE: {
      const ValType t = in.type;
      const ROp op = in.op == Op::BRTRUE
                         ? (t == ValType::Ref ? ROp::JNZ_REF
                            : t == ValType::I64 ? ROp::JNZ_I8 : ROp::JNZ_I4)
                         : (t == ValType::Ref ? ROp::JZ_REF
                            : t == ValType::I64 ? ROp::JZ_I8 : ROp::JZ_I4);
      emit(op, in.a, sreg(d - 1, t));
      reset_consts();
      break;
    }
    case Op::BEQ:
    case Op::BNE:
    case Op::BLT:
    case Op::BLE:
    case Op::BGT:
    case Op::BGE: {
      const ValType t = in.type;
      const std::int32_t ra = sreg(d - 2, t);
      const std::int32_t rb = sreg(d - 1, t);
      const auto cb = const_at(static_cast<std::size_t>(d - 1));
      if (flags_.fuse_cmp_branch) {
        if (t == ValType::I32 && cb.has_value() && flags_.imm_operands) {
          ROp op;
          switch (in.op) {
            case Op::BEQ: op = ROp::JEQI_I4; break;
            case Op::BNE: op = ROp::JNEI_I4; break;
            case Op::BLT: op = ROp::JLTI_I4; break;
            case Op::BLE: op = ROp::JLEI_I4; break;
            case Op::BGT: op = ROp::JGTI_I4; break;
            default: op = ROp::JGEI_I4; break;
          }
          RInstr& r = emit(op, in.a, ra);
          r.imm.i64 = static_cast<std::int64_t>(cb->raw);
        } else {
          auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8, ROp ref) {
            return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
                   : t == ValType::F32 ? r4
                   : t == ValType::F64 ? r8 : ref;
          };
          ROp op;
          switch (in.op) {
            case Op::BEQ: op = pick(ROp::JEQ_I4, ROp::JEQ_I8, ROp::JEQ_R4, ROp::JEQ_R8, ROp::JEQ_REF); break;
            case Op::BNE: op = pick(ROp::JNE_I4, ROp::JNE_I8, ROp::JNE_R4, ROp::JNE_R8, ROp::JNE_REF); break;
            case Op::BLT: op = pick(ROp::JLT_I4, ROp::JLT_I8, ROp::JLT_R4, ROp::JLT_R8, ROp::JEQ_REF); break;
            case Op::BLE: op = pick(ROp::JLE_I4, ROp::JLE_I8, ROp::JLE_R4, ROp::JLE_R8, ROp::JEQ_REF); break;
            case Op::BGT: op = pick(ROp::JGT_I4, ROp::JGT_I8, ROp::JGT_R4, ROp::JGT_R8, ROp::JEQ_REF); break;
            default: op = pick(ROp::JGE_I4, ROp::JGE_I8, ROp::JGE_R4, ROp::JGE_R8, ROp::JEQ_REF); break;
          }
          emit(op, in.a, ra, rb);
        }
      } else {
        // Two-instruction sequence (the "fewer passes" profiles): materialize
        // the comparison, then branch on the flag. NaN note: BLE/BGE are
        // emulated via the negated strict compare; this differs from the
        // fused form only for NaN operands, which no benchmark exercises.
        const std::int32_t flag = new_reg(ValType::I32);
        auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8) {
          return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
                 : t == ValType::F32 ? r4
                 : t == ValType::F64 ? r8 : ROp::CEQ_REF;
        };
        ROp cmp;
        bool jump_if_true;
        switch (in.op) {
          case Op::BEQ: cmp = pick(ROp::CEQ_I4, ROp::CEQ_I8, ROp::CEQ_R4, ROp::CEQ_R8); jump_if_true = true; break;
          case Op::BNE: cmp = pick(ROp::CEQ_I4, ROp::CEQ_I8, ROp::CEQ_R4, ROp::CEQ_R8); jump_if_true = false; break;
          case Op::BLT: cmp = pick(ROp::CLT_I4, ROp::CLT_I8, ROp::CLT_R4, ROp::CLT_R8); jump_if_true = true; break;
          case Op::BLE: cmp = pick(ROp::CGT_I4, ROp::CGT_I8, ROp::CGT_R4, ROp::CGT_R8); jump_if_true = false; break;
          case Op::BGT: cmp = pick(ROp::CGT_I4, ROp::CGT_I8, ROp::CGT_R4, ROp::CGT_R8); jump_if_true = true; break;
          default: cmp = pick(ROp::CLT_I4, ROp::CLT_I8, ROp::CLT_R4, ROp::CLT_R8); jump_if_true = false; break;
        }
        emit(cmp, flag, ra, rb).flags = RInstr::kPinned;
        emit(jump_if_true ? ROp::JNZ_I4 : ROp::JZ_I4, in.a, flag);
      }
      reset_consts();
      break;
    }

    case Op::CONV_I4:
    case Op::CONV_I8:
    case Op::CONV_R4:
    case Op::CONV_R8:
    case Op::CONV_I1:
    case Op::CONV_U1:
    case Op::CONV_I2:
    case Op::CONV_U2: {
      const ValType src = in.type;
      ValType dst;
      switch (in.op) {
        case Op::CONV_I8: dst = ValType::I64; break;
        case Op::CONV_R4: dst = ValType::F32; break;
        case Op::CONV_R8: dst = ValType::F64; break;
        default: dst = ValType::I32; break;
      }
      const std::int32_t rs = sreg(d - 1, src);
      const std::int32_t rd = sreg(d - 1, dst);
      auto cv = [&](ValType s, ValType t2) -> ROp {
        if (s == ValType::I32) {
          return t2 == ValType::I64 ? ROp::CV_I4_I8
                 : t2 == ValType::F32 ? ROp::CV_I4_R4 : ROp::CV_I4_R8;
        }
        if (s == ValType::I64) {
          return t2 == ValType::I32 ? ROp::CV_I8_I4
                 : t2 == ValType::F32 ? ROp::CV_I8_R4 : ROp::CV_I8_R8;
        }
        if (s == ValType::F32) {
          return t2 == ValType::I32 ? ROp::CV_R4_I4
                 : t2 == ValType::I64 ? ROp::CV_R4_I8 : ROp::CV_R4_R8;
        }
        return t2 == ValType::I32 ? ROp::CV_R8_I4
               : t2 == ValType::I64 ? ROp::CV_R8_I8 : ROp::CV_R8_R4;
      };
      std::int32_t cur = rs;
      if (src != dst) {
        emit(cv(src, dst), rd, rs);
        cur = rd;
      }
      switch (in.op) {
        case Op::CONV_I1: emit(ROp::SEXT8, rd, cur); break;
        case Op::CONV_U1: emit(ROp::ZEXT8, rd, cur); break;
        case Op::CONV_I2: emit(ROp::SEXT16, rd, cur); break;
        case Op::CONV_U2: emit(ROp::ZEXT16, rd, cur); break;
        default:
          if (src == dst && cur != rd) emit(ROp::MOV, rd, cur);
          break;
      }
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    }

    case Op::CALL: {
      const MethodDef& callee = mod_.method(in.a);
      const auto argc = static_cast<std::int32_t>(callee.sig.params.size());
      const auto pool_at = static_cast<std::int32_t>(rc_.args_pool.size());
      for (std::int32_t i = 0; i < argc; ++i) {
        rc_.args_pool.push_back(sreg(d - argc + i, callee.sig.params[static_cast<std::size_t>(i)]));
      }
      const std::int32_t rd =
          callee.sig.ret == ValType::None ? -1 : sreg(d - argc, callee.sig.ret);
      RInstr& r = emit(ROp::CALL_R, rd, in.a, pool_at);
      r.imm.i64 = argc;
      reset_consts();
      break;
    }
    case Op::CALLINTR: {
      const IntrinsicDef& def = intrinsic(in.a);
      const auto argc = static_cast<std::int32_t>(def.sig.params.size());
      bool emitted = false;
      if (flags_.fast_math && def.pure_math && in.a != I_ROUND_R4 &&
          in.a != I_ROUND_R8) {
        const std::int32_t a0 = argc >= 1 ? sreg(d - argc, def.sig.params[0]) : -1;
        const std::int32_t a1 = argc >= 2 ? sreg(d - argc + 1, def.sig.params[1]) : -1;
        const std::int32_t rd = sreg(d - argc, def.sig.ret);
        double (*fn1)(double) = nullptr;
        double (*fn2)(double, double) = nullptr;
        ROp dedicated = ROp::NOP_R;
        switch (in.a) {
          case I_SIN: fn1 = [](double x) { return std::sin(x); }; break;
          case I_COS: fn1 = [](double x) { return std::cos(x); }; break;
          case I_TAN: fn1 = [](double x) { return std::tan(x); }; break;
          case I_ASIN: fn1 = [](double x) { return std::asin(x); }; break;
          case I_ACOS: fn1 = [](double x) { return std::acos(x); }; break;
          case I_ATAN: fn1 = [](double x) { return std::atan(x); }; break;
          case I_FLOOR: fn1 = [](double x) { return std::floor(x); }; break;
          case I_CEIL: fn1 = [](double x) { return std::ceil(x); }; break;
          case I_SQRT: fn1 = [](double x) { return std::sqrt(x); }; break;
          case I_EXP: fn1 = [](double x) { return std::exp(x); }; break;
          case I_LOG: fn1 = [](double x) { return std::log(x); }; break;
          case I_RINT: fn1 = [](double x) { return std::rint(x); }; break;
          case I_ATAN2: fn2 = [](double y, double x) { return std::atan2(y, x); }; break;
          case I_POW: fn2 = [](double x, double y) { return std::pow(x, y); }; break;
          case I_ABS_I4: dedicated = ROp::ABS_I4_R; break;
          case I_ABS_I8: dedicated = ROp::ABS_I8_R; break;
          case I_ABS_R4: dedicated = ROp::ABS_R4_R; break;
          case I_ABS_R8: dedicated = ROp::ABS_R8_R; break;
          case I_MAX_I4: dedicated = ROp::MAX_I4_R; break;
          case I_MAX_I8: dedicated = ROp::MAX_I8_R; break;
          case I_MAX_R4: dedicated = ROp::MAX_R4_R; break;
          case I_MAX_R8: dedicated = ROp::MAX_R8_R; break;
          case I_MIN_I4: dedicated = ROp::MIN_I4_R; break;
          case I_MIN_I8: dedicated = ROp::MIN_I8_R; break;
          case I_MIN_R4: dedicated = ROp::MIN_R4_R; break;
          case I_MIN_R8: dedicated = ROp::MIN_R8_R; break;
          default: break;
        }
        if (fn1 != nullptr) {
          RInstr& r = emit(ROp::MATH1_R8, rd, a0);
          r.imm.i64 = static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(fn1));
          emitted = true;
        } else if (fn2 != nullptr) {
          RInstr& r = emit(ROp::MATH2_R8, rd, a0, a1);
          r.imm.i64 = static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(fn2));
          emitted = true;
        } else if (dedicated != ROp::NOP_R) {
          emit(dedicated, rd, a0, a1);
          emitted = true;
        }
      }
      if (!emitted) {
        const auto pool_at = static_cast<std::int32_t>(rc_.args_pool.size());
        for (std::int32_t i = 0; i < argc; ++i) {
          rc_.args_pool.push_back(sreg(d - argc + i, def.sig.params[static_cast<std::size_t>(i)]));
        }
        const std::int32_t rd =
            def.sig.ret == ValType::None ? -1 : sreg(d - argc, def.sig.ret);
        RInstr& r = emit(ROp::CALLINTR_R, rd, in.a, pool_at);
        r.imm.i64 = argc;
      }
      reset_consts();
      break;
    }
    case Op::RET:
      emit(ROp::RET_R, -1,
           m_.sig.ret == ValType::None ? -1 : sreg(d - 1, m_.sig.ret));
      reset_consts();
      break;

    case Op::NEWOBJ:
      emit(ROp::NEWOBJ_R, sreg(d, ValType::Ref), in.a);
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    case Op::LDFLD:
      emit(ROp::LDFLD_R, sreg(d - 1, in.type), sreg(d - 1, ValType::Ref), in.a);
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::STFLD:
      emit(ROp::STFLD_R, sreg(d - 1, in.type), sreg(d - 2, ValType::Ref), in.a);
      break;
    case Op::LDSFLD:
      emit(ROp::LDSFLD_R, sreg(d, in.type), in.b, in.a);
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    case Op::STSFLD:
      emit(ROp::STSFLD_R, sreg(d - 1, in.type), in.b, in.a);
      break;

    case Op::NEWARR:
      emit(ROp::NEWARR_R, sreg(d - 1, ValType::Ref), sreg(d - 1, ValType::I32),
           static_cast<std::int32_t>(in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::LDLEN:
      emit(ROp::LDLEN_R, sreg(d - 1, ValType::I32), sreg(d - 1, ValType::Ref));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::LDELEM: {
      auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8, ROp ref) {
        switch (in.type) {
          case ValType::I32: return i4;
          case ValType::I64: return i8;
          case ValType::F32: return r4;
          case ValType::F64: return r8;
          default: return ref;
        }
      };
      // Explicit range-check node + unchecked access: the shape real JIT IRs
      // use, and what lets the BCE pass delete exactly the check.
      emit(ROp::CHK_BOUNDS, -1, sreg(d - 2, ValType::Ref),
           sreg(d - 1, ValType::I32));
      emit(pick(ROp::LDELEMU_I4, ROp::LDELEMU_I8, ROp::LDELEMU_R4,
                ROp::LDELEMU_R8, ROp::LDELEMU_REF),
           sreg(d - 2, in.type), sreg(d - 2, ValType::Ref),
           sreg(d - 1, ValType::I32));
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::STELEM: {
      auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8, ROp ref) {
        switch (in.type) {
          case ValType::I32: return i4;
          case ValType::I64: return i8;
          case ValType::F32: return r4;
          case ValType::F64: return r8;
          default: return ref;
        }
      };
      emit(ROp::CHK_BOUNDS, -1, sreg(d - 3, ValType::Ref),
           sreg(d - 2, ValType::I32));
      emit(pick(ROp::STELEMU_I4, ROp::STELEMU_I8, ROp::STELEMU_R4,
                ROp::STELEMU_R8, ROp::STELEMU_REF),
           sreg(d - 1, in.type), sreg(d - 3, ValType::Ref),
           sreg(d - 2, ValType::I32));
      break;
    }
    case Op::NEWMAT: {
      RInstr& r = emit(ROp::NEWMAT_R, sreg(d - 2, ValType::Ref),
                       sreg(d - 2, ValType::I32), sreg(d - 1, ValType::I32));
      r.imm.i64 = static_cast<std::int64_t>(in.type);
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::LDELEM2: {
      const std::int32_t creg = sreg(d - 1, ValType::I32);
      if (flags_.fast_multidim) {
        auto pick = [&] {
          switch (in.type) {
            case ValType::I32: return ROp::LDEL2_I4;
            case ValType::I64: return ROp::LDEL2_I8;
            case ValType::F32: return ROp::LDEL2_R4;
            case ValType::F64: return ROp::LDEL2_R8;
            default: return ROp::LDEL2_REF;
          }
        };
        RInstr& r = emit(pick(), sreg(d - 3, in.type),
                         sreg(d - 3, ValType::Ref), sreg(d - 2, ValType::I32));
        r.imm.i64 = creg;
      } else {
        RInstr& r = emit(ROp::LDEL2_SLOW, sreg(d - 3, in.type),
                         sreg(d - 3, ValType::Ref), sreg(d - 2, ValType::I32));
        r.imm.i64 = creg | (static_cast<std::int64_t>(in.type) << 40);
      }
      set_const(static_cast<std::size_t>(d - 3), std::nullopt);
      break;
    }
    case Op::STELEM2: {
      const std::int32_t creg = sreg(d - 2, ValType::I32);
      const std::int32_t vreg = sreg(d - 1, in.type);
      const std::int64_t packed =
          creg | (static_cast<std::int64_t>(vreg) << kRegFieldBits);
      if (flags_.fast_multidim) {
        auto pick = [&] {
          switch (in.type) {
            case ValType::I32: return ROp::STEL2_I4;
            case ValType::I64: return ROp::STEL2_I8;
            case ValType::F32: return ROp::STEL2_R4;
            case ValType::F64: return ROp::STEL2_R8;
            default: return ROp::STEL2_REF;
          }
        };
        RInstr& r = emit(pick(), -1, sreg(d - 4, ValType::Ref),
                         sreg(d - 3, ValType::I32));
        r.imm.i64 = packed;
      } else {
        RInstr& r = emit(ROp::STEL2_SLOW, -1, sreg(d - 4, ValType::Ref),
                         sreg(d - 3, ValType::I32));
        r.imm.i64 = packed | (static_cast<std::int64_t>(in.type) << 40);
      }
      break;
    }
    case Op::LDMATROWS:
      emit(ROp::LDMROWS_R, sreg(d - 1, ValType::I32), sreg(d - 1, ValType::Ref));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::LDMATCOLS:
      emit(ROp::LDMCOLS_R, sreg(d - 1, ValType::I32), sreg(d - 1, ValType::Ref));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;

    case Op::BOX:
      emit(ROp::BOX_R, sreg(d - 1, ValType::Ref), sreg(d - 1, in.type),
           static_cast<std::int32_t>(in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::UNBOX:
      emit(ROp::UNBOX_R, sreg(d - 1, in.type), sreg(d - 1, ValType::Ref),
           static_cast<std::int32_t>(in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;

    case Op::THROW:
      emit(ROp::THROW_R, -1, sreg(d - 1, ValType::Ref));
      reset_consts();
      break;
    case Op::LEAVE:
      emit(ROp::LEAVE_R, -1, in.a);
      reset_consts();
      break;
    case Op::ENDFINALLY:
      emit(ROp::ENDFINALLY_R);
      reset_consts();
      break;

    case Op::COUNT_:
      throw std::logic_error("bad opcode reached translator");
  }
}

// --------------------------------------------------------------------------
// Copy propagation + dead-move elimination, per basic block.

std::vector<std::int32_t> Compiler::block_leaders() const {
  std::vector<bool> lead(out_.size() + 1, false);
  lead[0] = true;
  for (std::size_t i = 0; i < out_.size(); ++i) {
    if (is_block_end(out_[i].op) && i + 1 < out_.size()) lead[i + 1] = true;
  }
  // IL label positions (branch targets, handler starts, leave targets).
  for (std::size_t il = 0; il < labels_.size(); ++il) {
    if (labels_[il] && il < il_start_.size() && il_start_[il] >= 0 &&
        static_cast<std::size_t>(il_start_[il]) < out_.size()) {
      lead[static_cast<std::size_t>(il_start_[il])] = true;
    }
  }
  std::vector<std::int32_t> leaders;
  for (std::size_t i = 0; i < out_.size(); ++i) {
    if (lead[i]) leaders.push_back(static_cast<std::int32_t>(i));
  }
  leaders.push_back(static_cast<std::int32_t>(out_.size()));
  return leaders;
}

std::vector<std::int32_t> Compiler::live_out_stack_regs(
    std::size_t block_end) const {
  // Registers carrying stack values into successors of the block whose last
  // instruction is at block_end-1.
  std::vector<std::int32_t> live;
  auto add_entry_stack = [&](std::int32_t il) {
    if (il < 0 || static_cast<std::size_t>(il) >= m_.stack_in.size()) return;
    const auto& st = m_.stack_in[static_cast<std::size_t>(il)];
    for (std::size_t depth = 0; depth < st.size(); ++depth) {
      const auto key =
          (static_cast<std::int64_t>(depth) << 4) | static_cast<std::int64_t>(st[depth]);
      auto it = stack_regs_.find(key);
      if (it != stack_regs_.end()) live.push_back(it->second);
    }
  };
  if (block_end == 0) return live;
  const RInstr& last = out_[block_end - 1];
  const std::int32_t fall_il = block_end < out_.size()
                                   ? out_[block_end].il_pc
                                   : -1;  // next block's first instruction
  if (is_branch(last.op)) {
    add_entry_stack(last.d);  // branch target (IL pc pre-compaction)
    if (last.op != ROp::JMP && last.op != ROp::JMPB) {
      add_entry_stack(fall_il);
    }
  } else if (last.op == ROp::RET_R || last.op == ROp::THROW_R ||
             last.op == ROp::LEAVE_R || last.op == ROp::ENDFINALLY_R) {
    // No stack values survive these exits.
  } else {
    add_entry_stack(fall_il);
  }
  return live;
}

void Compiler::optimize_blocks() {
  const auto leaders = block_leaders();
  const std::int32_t nregs = static_cast<std::int32_t>(rc_.reg_types.size());

  for (std::size_t bi = 0; bi + 1 < leaders.size(); ++bi) {
    const auto lo = static_cast<std::size_t>(leaders[bi]);
    const auto hi = static_cast<std::size_t>(leaders[bi + 1]);
    if (lo >= hi) continue;

    // ---- forward copy propagation ----
    std::vector<std::int32_t> copy_of(static_cast<std::size_t>(nregs), -1);
    auto root = [&](std::int32_t r) {
      while (r >= 0 && copy_of[static_cast<std::size_t>(r)] >= 0) {
        r = copy_of[static_cast<std::size_t>(r)];
      }
      return r;
    };
    auto invalidate = [&](std::int32_t r) {
      copy_of[static_cast<std::size_t>(r)] = -1;
      for (auto& c : copy_of) {
        if (c == r) c = -1;
      }
    };
    for (std::size_t i = lo; i < hi; ++i) {
      RInstr& in = out_[i];
      if (in.op == ROp::NOP_R) continue;
      // Rewrite uses through the copy map.
      if (!in.pinned()) {
        auto rewrite = [&](std::int32_t& r) {
          if (r >= 0) r = root(r);
        };
        switch (in.op) {
          case ROp::MOV:
          case ROp::MEMLD:
          case ROp::MEMST:
            rewrite(in.a);
            break;
          case ROp::STFLD_R:
            rewrite(in.a);
            rewrite(in.d);
            break;
          case ROp::STSFLD_R:
            rewrite(in.d);
            break;
          case ROp::STELEM_I4: case ROp::STELEM_I8: case ROp::STELEM_R4:
          case ROp::STELEM_R8: case ROp::STELEM_REF:
            rewrite(in.a);
            rewrite(in.b);
            rewrite(in.d);
            break;
          case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
          case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW: {
            rewrite(in.a);
            rewrite(in.b);
            std::int32_t c = static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask);
            const std::int64_t rest = in.imm.i64 & ~kRegFieldMask;
            rewrite(c);
            in.imm.i64 = rest | c;
            break;
          }
          case ROp::STEL2_I4: case ROp::STEL2_I8: case ROp::STEL2_R4:
          case ROp::STEL2_R8: case ROp::STEL2_REF: case ROp::STEL2_SLOW: {
            rewrite(in.a);
            rewrite(in.b);
            std::int32_t c = static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask);
            std::int32_t v = static_cast<std::int32_t>((in.imm.i64 >> kRegFieldBits) & kRegFieldMask);
            const std::int64_t rest =
                in.imm.i64 & ~(kRegFieldMask | (kRegFieldMask << kRegFieldBits));
            rewrite(c);
            rewrite(v);
            in.imm.i64 = rest | c | (static_cast<std::int64_t>(v) << kRegFieldBits);
            break;
          }
          case ROp::CALL_R:
          case ROp::CALLINTR_R: {
            const auto argc = static_cast<std::int32_t>(in.imm.i64);
            for (std::int32_t k = 0; k < argc; ++k) {
              std::int32_t& r = rc_.args_pool[static_cast<std::size_t>(in.b + k)];
              r = root(r);
            }
            break;
          }
          case ROp::RET_R:
          case ROp::THROW_R:
          case ROp::JZ_I4: case ROp::JNZ_I4: case ROp::JZ_I8:
          case ROp::JNZ_I8: case ROp::JZ_REF: case ROp::JNZ_REF:
            rewrite(in.a);
            break;
          case ROp::JEQI_I4: case ROp::JNEI_I4: case ROp::JLTI_I4:
          case ROp::JLEI_I4: case ROp::JGTI_I4: case ROp::JGEI_I4:
            rewrite(in.a);
            break;
          case ROp::JEQ_I4: case ROp::JNE_I4: case ROp::JLT_I4:
          case ROp::JLE_I4: case ROp::JGT_I4: case ROp::JGE_I4:
          case ROp::JEQ_I8: case ROp::JNE_I8: case ROp::JLT_I8:
          case ROp::JLE_I8: case ROp::JGT_I8: case ROp::JGE_I8:
          case ROp::JEQ_R4: case ROp::JNE_R4: case ROp::JLT_R4:
          case ROp::JLE_R4: case ROp::JGT_R4: case ROp::JGE_R4:
          case ROp::JEQ_R8: case ROp::JNE_R8: case ROp::JLT_R8:
          case ROp::JLE_R8: case ROp::JGT_R8: case ROp::JGE_R8:
          case ROp::JEQ_REF: case ROp::JNE_REF:
            rewrite(in.a);
            rewrite(in.b);
            break;
          case ROp::JMP:
          case ROp::JMPB:
          case ROp::LEAVE_R:
          case ROp::ENDFINALLY_R:
          case ROp::SAFEPOINT:
          case ROp::LDI:
          case ROp::LDSTR_R:
          case ROp::NEWOBJ_R:
          case ROp::LDSFLD_R:
            break;
          default:
            rewrite(in.a);
            if (in.b >= 0 && in.op != ROp::NEWARR_R && in.op != ROp::LDFLD_R &&
                in.op != ROp::BOX_R && in.op != ROp::UNBOX_R) {
              rewrite(in.b);
            }
            break;
        }
      }
      // Update the copy map.
      const Operands ops = operands_of(in, rc_.args_pool);
      if (ops.def >= 0) {
        invalidate(ops.def);
        if (in.op == ROp::MOV && !in.pinned() && in.a != in.d) {
          copy_of[static_cast<std::size_t>(in.d)] = in.a;
        }
      }
    }

    // ---- backward dead-move/dead-value elimination ----
    std::vector<bool> live(static_cast<std::size_t>(nregs), false);
    for (std::int32_t r = 0; r < rc_.slot_regs; ++r) {
      live[static_cast<std::size_t>(r)] = true;  // locals conservatively live
    }
    for (std::int32_t r : live_out_stack_regs(hi)) {
      live[static_cast<std::size_t>(r)] = true;
    }
    for (std::size_t i = hi; i-- > lo;) {
      RInstr& in = out_[i];
      if (in.op == ROp::NOP_R) continue;
      Operands ops = operands_of(in, rc_.args_pool);
      const bool removable = is_pure(in.op) && !in.pinned() && ops.def >= 0 &&
                             !live[static_cast<std::size_t>(ops.def)];
      if (removable) {
        in.op = ROp::NOP_R;
        continue;
      }
      if (ops.def >= 0) live[static_cast<std::size_t>(ops.def)] = false;
      for (int k = 0; k < ops.nuses; ++k) {
        live[static_cast<std::size_t>(ops.uses[k])] = true;
      }
      if (in.op == ROp::CALL_R || in.op == ROp::CALLINTR_R) {
        const auto argc = static_cast<std::int32_t>(in.imm.i64);
        for (std::int32_t k = 0; k < argc; ++k) {
          live[static_cast<std::size_t>(
              rc_.args_pool[static_cast<std::size_t>(in.b + k)])] = true;
        }
      }
    }
    // Drop self-moves exposed by propagation.
    for (std::size_t i = lo; i < hi; ++i) {
      if (out_[i].op == ROp::MOV && out_[i].d == out_[i].a &&
          !out_[i].pinned()) {
        out_[i].op = ROp::NOP_R;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Bounds-check elimination for counted loops whose bound is ldlen.

void Compiler::eliminate_bounds_checks() {
  // Def counts per register across the whole method (spotting single-def
  // array registers; arguments count as zero-def).
  const std::int32_t nregs = static_cast<std::int32_t>(rc_.reg_types.size());
  std::vector<std::int32_t> defs(static_cast<std::size_t>(nregs), 0);
  for (std::size_t i = 0; i < out_.size(); ++i) {
    const Operands ops = operands_of(out_[i], rc_.args_pool);
    if (ops.def >= 0) ++defs[static_cast<std::size_t>(ops.def)];
  }

  // A register's last definition strictly before position `at`.
  auto last_def_before = [&](std::int32_t reg, std::size_t at) -> std::int32_t {
    for (std::size_t k = at; k-- > 0;) {
      if (operands_of(out_[k], rc_.args_pool).def == reg) {
        return static_cast<std::int32_t>(k);
      }
    }
    return -1;
  };
  // True if `reg` is initialized to the constant 0 reaching `at` (directly
  // by LDI 0, or through one MOV from an LDI-0 register).
  auto init_is_zero = [&](std::int32_t reg, std::size_t at) {
    std::int32_t d = last_def_before(reg, at);
    if (d < 0) return false;
    const RInstr& in = out_[static_cast<std::size_t>(d)];
    if (in.op == ROp::LDI) return in.imm.i64 == 0;
    if (in.op == ROp::MOV) {
      const std::int32_t d2 = last_def_before(in.a, static_cast<std::size_t>(d));
      if (d2 < 0) return false;
      const RInstr& in2 = out_[static_cast<std::size_t>(d2)];
      return in2.op == ROp::LDI && in2.imm.i64 == 0;
    }
    return false;
  };

  // Candidate back-edges: JLT_I4 i, len, body with body earlier in the code
  // (the canonical `br cond; body: ...; i++; cond: ldlen; blt body` shape).
  for (std::size_t j = 0; j < out_.size(); ++j) {
    const RInstr& br = out_[j];
    if (br.op != ROp::JLT_I4) continue;
    const std::int32_t til = br.d;  // still an IL pc pre-compaction
    if (til < 0 || static_cast<std::size_t>(til) >= il_start_.size()) continue;
    const std::int32_t body = il_start_[static_cast<std::size_t>(til)];
    if (body < 0 || static_cast<std::size_t>(body) >= j) continue;
    const std::int32_t ireg = br.a;
    const std::int32_t lenreg = br.b;

    // The reaching definition of len at the branch must be LDLEN of a
    // single-def array register, with no other defs of len inside the loop.
    std::int32_t lendef = -1;
    bool bad = false;
    for (std::size_t k = static_cast<std::size_t>(body); k < j; ++k) {
      if (operands_of(out_[k], rc_.args_pool).def == lenreg) {
        if (lendef >= 0) bad = true;
        lendef = static_cast<std::int32_t>(k);
      }
    }
    if (bad) continue;
    if (lendef < 0) {
      lendef = last_def_before(lenreg, static_cast<std::size_t>(body));
    }
    if (lendef < 0 || out_[static_cast<std::size_t>(lendef)].op != ROp::LDLEN_R) {
      continue;
    }
    const std::int32_t arrreg = out_[static_cast<std::size_t>(lendef)].a;
    if (defs[static_cast<std::size_t>(arrreg)] > 1) continue;

    // Induction variable: inside [body, j) the defs of i must be either a
    // single `ADDI i, i, 1` or the pair `ADDI t, i, 1; ...; MOV i, t` where
    // the ADDI is t's only in-loop def. No other defs of arr in the loop.
    std::int32_t incr_at = -1;
    for (std::size_t k = static_cast<std::size_t>(body); k < j && !bad; ++k) {
      const Operands ops = operands_of(out_[k], rc_.args_pool);
      if (ops.def == ireg) {
        if (incr_at >= 0) {
          bad = true;
        } else if (out_[k].op == ROp::ADDI_I4 && out_[k].a == ireg &&
                   out_[k].imm.i64 == 1) {
          incr_at = static_cast<std::int32_t>(k);
        } else if (out_[k].op == ROp::MOV) {
          const std::int32_t t = out_[k].a;
          const std::int32_t td = last_def_before(t, k);
          if (td >= static_cast<std::int32_t>(body) &&
              out_[static_cast<std::size_t>(td)].op == ROp::ADDI_I4 &&
              out_[static_cast<std::size_t>(td)].a == ireg &&
              out_[static_cast<std::size_t>(td)].imm.i64 == 1) {
            // The temp must not be redefined between the ADDI and the MOV.
            bool clean = true;
            for (std::size_t x = static_cast<std::size_t>(td) + 1; x < k; ++x) {
              if (operands_of(out_[x], rc_.args_pool).def == t) clean = false;
            }
            if (clean) {
              incr_at = static_cast<std::int32_t>(td);
            } else {
              bad = true;
            }
          } else {
            bad = true;
          }
        } else {
          bad = true;
        }
      }
      if (ops.def == arrreg) bad = true;
    }
    if (bad || incr_at < 0) continue;
    if (!init_is_zero(ireg, static_cast<std::size_t>(body))) continue;

    // Delete the range-check nodes for a[i] on the bounded array, positioned
    // before the increment (where i < arr.Length is guaranteed by the guard).
    for (std::size_t k = static_cast<std::size_t>(body);
         k < static_cast<std::size_t>(incr_at); ++k) {
      RInstr& in = out_[k];
      if (in.op == ROp::CHK_BOUNDS && in.a == arrreg && in.b == ireg) {
        in.op = ROp::NOP_R;
      }
    }
    // If the in-loop ldlen feeds only the loop guard, fuse the guard into a
    // compare-against-length branch and drop the ldlen (instruction
    // selection: cmp idx, [arr+len]).
    if (lendef >= static_cast<std::int32_t>(body)) {
      bool len_only_guard = true;
      for (std::size_t k = static_cast<std::size_t>(body); k <= j; ++k) {
        if (k == j || static_cast<std::int32_t>(k) == lendef) continue;
        const Operands ops = operands_of(out_[k], rc_.args_pool);
        for (int u = 0; u < ops.nuses; ++u) {
          if (ops.uses[u] == lenreg) len_only_guard = false;
        }
      }
      if (len_only_guard) {
        out_[static_cast<std::size_t>(lendef)].op = ROp::NOP_R;
        out_[j].op = ROp::JLT_LEN;
        out_[j].b = arrreg;
      }
    }
  }
}

// --------------------------------------------------------------------------

void Compiler::compact() {
  std::vector<std::int32_t> newpos(out_.size() + 1, 0);
  std::vector<RInstr> packed;
  packed.reserve(out_.size());
  for (std::size_t i = 0; i < out_.size(); ++i) {
    newpos[i] = static_cast<std::int32_t>(packed.size());
    if (out_[i].op != ROp::NOP_R) packed.push_back(out_[i]);
  }
  newpos[out_.size()] = static_cast<std::int32_t>(packed.size());

  // IL -> rpc map.
  rc_.il2rpc.assign(m_.code.size() + 1, 0);
  for (std::size_t il = 0; il <= m_.code.size(); ++il) {
    const std::int32_t orig = il_start_[il];
    rc_.il2rpc[il] = newpos[static_cast<std::size_t>(orig)];
  }
  // Re-target branches (their d fields hold IL pcs).
  for (RInstr& in : packed) {
    if (is_branch(in.op)) {
      in.d = rc_.il2rpc[static_cast<std::size_t>(in.d)];
    }
  }
  rc_.code = std::move(packed);
}

void Compiler::finalize() {
  rc_.method = &m_;
  // Catch handlers receive the exception in the stack register for
  // (depth 0, Ref) — the verifier seeds handler entry stacks with [Ref].
  // Resolve these before the ref scan so any register created here is seen.
  for (const ExHandler& h : m_.handlers) {
    rc_.handler_exc_reg.push_back(
        h.kind == HandlerKind::Catch ? sreg(0, ValType::Ref) : -1);
  }
  rc_.num_regs = static_cast<std::int32_t>(rc_.reg_types.size());
  for (std::int32_t r = 0; r < rc_.num_regs; ++r) {
    if (rc_.reg_types[static_cast<std::size_t>(r)] == ValType::Ref) {
      rc_.ref_regs.push_back(r);
    }
  }
  if (rc_.code.empty()) {
    // Defensive: an empty body cannot be verified, but never execute off the
    // end regardless.
    RInstr ret;
    ret.op = ROp::RET_R;
    ret.a = -1;
    rc_.code.push_back(ret);
  }
}

}  // namespace

RCode compile(Module& module, const MethodDef& m, const EngineFlags& flags) {
  if (!m.verified) {
    throw std::logic_error("compile of unverified method: " + m.name);
  }
  return Compiler(module, m, flags).run();
}

}  // namespace hpcnet::vm::regir

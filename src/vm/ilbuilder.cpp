#include "vm/ilbuilder.hpp"

#include <stdexcept>

namespace hpcnet::vm {

ILBuilder::ILBuilder(Module& module, std::string name, MethodSig sig)
    : module_(module), name_(std::move(name)), sig_(std::move(sig)) {}

std::int32_t ILBuilder::add_local(ValType t) {
  locals_.push_back(t);
  return static_cast<std::int32_t>(locals_.size()) - 1;
}

ILBuilder::Label ILBuilder::new_label() {
  label_targets_.push_back(-1);
  return Label{static_cast<std::int32_t>(label_targets_.size()) - 1};
}

void ILBuilder::bind(Label l) {
  if (l.id < 0 || static_cast<std::size_t>(l.id) >= label_targets_.size()) {
    throw std::logic_error("bind: bad label");
  }
  if (label_targets_[static_cast<std::size_t>(l.id)] != -1) {
    throw std::logic_error("bind: label already bound");
  }
  label_targets_[static_cast<std::size_t>(l.id)] = here();
}

ILBuilder& ILBuilder::emit_branch(Op op, Label l) {
  fixups_.emplace_back(here(), l.id);
  return emit(Instr::make(op));
}

ILBuilder& ILBuilder::ldc_i4(std::int32_t v) {
  Instr in = Instr::make(Op::LDC_I4);
  in.imm.i64 = v;
  return emit(in);
}
ILBuilder& ILBuilder::ldc_i8(std::int64_t v) {
  Instr in = Instr::make(Op::LDC_I8);
  in.imm.i64 = v;
  return emit(in);
}
ILBuilder& ILBuilder::ldc_r4(float v) {
  Instr in = Instr::make(Op::LDC_R4);
  in.imm.f64 = static_cast<double>(v);
  return emit(in);
}
ILBuilder& ILBuilder::ldc_r8(double v) {
  Instr in = Instr::make(Op::LDC_R8);
  in.imm.f64 = v;
  return emit(in);
}
ILBuilder& ILBuilder::ldnull() { return emit(Instr::make(Op::LDNULL)); }
ILBuilder& ILBuilder::ldstr(const std::string& s) {
  return emit(Instr::make(Op::LDSTR, module_.intern_string(s)));
}

ILBuilder& ILBuilder::ldloc(std::int32_t i) {
  return emit(Instr::make(Op::LDLOC, i));
}
ILBuilder& ILBuilder::stloc(std::int32_t i) {
  return emit(Instr::make(Op::STLOC, i));
}
ILBuilder& ILBuilder::ldarg(std::int32_t i) {
  return emit(Instr::make(Op::LDARG, i));
}
ILBuilder& ILBuilder::starg(std::int32_t i) {
  return emit(Instr::make(Op::STARG, i));
}
ILBuilder& ILBuilder::dup() { return emit(Instr::make(Op::DUP)); }
ILBuilder& ILBuilder::pop() { return emit(Instr::make(Op::POP)); }

ILBuilder& ILBuilder::add() { return emit(Instr::make(Op::ADD)); }
ILBuilder& ILBuilder::sub() { return emit(Instr::make(Op::SUB)); }
ILBuilder& ILBuilder::mul() { return emit(Instr::make(Op::MUL)); }
ILBuilder& ILBuilder::div() { return emit(Instr::make(Op::DIV)); }
ILBuilder& ILBuilder::rem() { return emit(Instr::make(Op::REM)); }
ILBuilder& ILBuilder::neg() { return emit(Instr::make(Op::NEG)); }
ILBuilder& ILBuilder::and_() { return emit(Instr::make(Op::AND)); }
ILBuilder& ILBuilder::or_() { return emit(Instr::make(Op::OR)); }
ILBuilder& ILBuilder::xor_() { return emit(Instr::make(Op::XOR)); }
ILBuilder& ILBuilder::not_() { return emit(Instr::make(Op::NOT)); }
ILBuilder& ILBuilder::shl() { return emit(Instr::make(Op::SHL)); }
ILBuilder& ILBuilder::shr() { return emit(Instr::make(Op::SHR)); }
ILBuilder& ILBuilder::shr_un() { return emit(Instr::make(Op::SHR_UN)); }

ILBuilder& ILBuilder::ceq() { return emit(Instr::make(Op::CEQ)); }
ILBuilder& ILBuilder::cgt() { return emit(Instr::make(Op::CGT)); }
ILBuilder& ILBuilder::clt() { return emit(Instr::make(Op::CLT)); }

ILBuilder& ILBuilder::br(Label l) { return emit_branch(Op::BR, l); }
ILBuilder& ILBuilder::brtrue(Label l) { return emit_branch(Op::BRTRUE, l); }
ILBuilder& ILBuilder::brfalse(Label l) { return emit_branch(Op::BRFALSE, l); }
ILBuilder& ILBuilder::beq(Label l) { return emit_branch(Op::BEQ, l); }
ILBuilder& ILBuilder::bne(Label l) { return emit_branch(Op::BNE, l); }
ILBuilder& ILBuilder::blt(Label l) { return emit_branch(Op::BLT, l); }
ILBuilder& ILBuilder::ble(Label l) { return emit_branch(Op::BLE, l); }
ILBuilder& ILBuilder::bgt(Label l) { return emit_branch(Op::BGT, l); }
ILBuilder& ILBuilder::bge(Label l) { return emit_branch(Op::BGE, l); }

ILBuilder& ILBuilder::conv_i4() { return emit(Instr::make(Op::CONV_I4)); }
ILBuilder& ILBuilder::conv_i8() { return emit(Instr::make(Op::CONV_I8)); }
ILBuilder& ILBuilder::conv_r4() { return emit(Instr::make(Op::CONV_R4)); }
ILBuilder& ILBuilder::conv_r8() { return emit(Instr::make(Op::CONV_R8)); }
ILBuilder& ILBuilder::conv_i1() { return emit(Instr::make(Op::CONV_I1)); }
ILBuilder& ILBuilder::conv_u1() { return emit(Instr::make(Op::CONV_U1)); }
ILBuilder& ILBuilder::conv_i2() { return emit(Instr::make(Op::CONV_I2)); }
ILBuilder& ILBuilder::conv_u2() { return emit(Instr::make(Op::CONV_U2)); }

ILBuilder& ILBuilder::call(std::int32_t method_id) {
  return emit(Instr::make(Op::CALL, method_id));
}
ILBuilder& ILBuilder::call_intr(std::int32_t intrinsic_id) {
  return emit(Instr::make(Op::CALLINTR, intrinsic_id));
}
ILBuilder& ILBuilder::ret() { return emit(Instr::make(Op::RET)); }

ILBuilder& ILBuilder::newobj(std::int32_t class_id) {
  return emit(Instr::make(Op::NEWOBJ, class_id));
}
ILBuilder& ILBuilder::ldfld(std::int32_t class_id, std::int32_t field_index) {
  return emit(Instr::make(Op::LDFLD, field_index, class_id));
}
ILBuilder& ILBuilder::stfld(std::int32_t class_id, std::int32_t field_index) {
  return emit(Instr::make(Op::STFLD, field_index, class_id));
}
ILBuilder& ILBuilder::ldfld(std::int32_t class_id, const std::string& field) {
  const std::int32_t idx = module_.klass(class_id).field_index(field);
  if (idx < 0) throw std::logic_error("ldfld: unknown field " + field);
  return ldfld(class_id, idx);
}
ILBuilder& ILBuilder::stfld(std::int32_t class_id, const std::string& field) {
  const std::int32_t idx = module_.klass(class_id).field_index(field);
  if (idx < 0) throw std::logic_error("stfld: unknown field " + field);
  return stfld(class_id, idx);
}
ILBuilder& ILBuilder::ldsfld(std::int32_t class_id, const std::string& field) {
  const std::int32_t idx = module_.klass(class_id).static_field_index(field);
  if (idx < 0) throw std::logic_error("ldsfld: unknown field " + field);
  return emit(Instr::make(Op::LDSFLD, idx, class_id));
}
ILBuilder& ILBuilder::stsfld(std::int32_t class_id, const std::string& field) {
  const std::int32_t idx = module_.klass(class_id).static_field_index(field);
  if (idx < 0) throw std::logic_error("stsfld: unknown field " + field);
  return emit(Instr::make(Op::STSFLD, idx, class_id));
}

ILBuilder& ILBuilder::newarr(ValType elem) {
  Instr in = Instr::make(Op::NEWARR);
  in.type = elem;
  return emit(in);
}
ILBuilder& ILBuilder::ldlen() { return emit(Instr::make(Op::LDLEN)); }
ILBuilder& ILBuilder::ldelem(ValType elem) {
  Instr in = Instr::make(Op::LDELEM);
  in.type = elem;
  return emit(in);
}
ILBuilder& ILBuilder::stelem(ValType elem) {
  Instr in = Instr::make(Op::STELEM);
  in.type = elem;
  return emit(in);
}
ILBuilder& ILBuilder::newmat(ValType elem) {
  Instr in = Instr::make(Op::NEWMAT);
  in.type = elem;
  return emit(in);
}
ILBuilder& ILBuilder::ldelem2(ValType elem) {
  Instr in = Instr::make(Op::LDELEM2);
  in.type = elem;
  return emit(in);
}
ILBuilder& ILBuilder::stelem2(ValType elem) {
  Instr in = Instr::make(Op::STELEM2);
  in.type = elem;
  return emit(in);
}
ILBuilder& ILBuilder::ldmat_rows() { return emit(Instr::make(Op::LDMATROWS)); }
ILBuilder& ILBuilder::ldmat_cols() { return emit(Instr::make(Op::LDMATCOLS)); }

ILBuilder& ILBuilder::box(ValType t) {
  Instr in = Instr::make(Op::BOX);
  in.type = t;
  return emit(in);
}
ILBuilder& ILBuilder::unbox(ValType t) {
  Instr in = Instr::make(Op::UNBOX);
  in.type = t;
  return emit(in);
}

ILBuilder& ILBuilder::throw_() { return emit(Instr::make(Op::THROW)); }
ILBuilder& ILBuilder::leave(Label l) { return emit_branch(Op::LEAVE, l); }
ILBuilder& ILBuilder::endfinally() {
  return emit(Instr::make(Op::ENDFINALLY));
}

void ILBuilder::add_catch(Label try_begin, Label try_end, Label handler,
                          std::int32_t catch_class) {
  pending_handlers_.push_back(
      {HandlerKind::Catch, try_begin, try_end, handler, catch_class});
}
void ILBuilder::add_finally(Label try_begin, Label try_end, Label handler) {
  pending_handlers_.push_back(
      {HandlerKind::Finally, try_begin, try_end, handler, -1});
}

std::int32_t ILBuilder::resolve(Label l) const {
  if (l.id < 0 || static_cast<std::size_t>(l.id) >= label_targets_.size() ||
      label_targets_[static_cast<std::size_t>(l.id)] < 0) {
    throw std::logic_error(name_ + ": unbound label");
  }
  return label_targets_[static_cast<std::size_t>(l.id)];
}

std::int32_t ILBuilder::finish() {
  if (finished_) throw std::logic_error("finish called twice");
  finished_ = true;
  for (auto [pc, label] : fixups_) {
    code_[static_cast<std::size_t>(pc)].a = resolve(Label{label});
  }
  MethodDef def;
  def.name = name_;
  def.sig = sig_;
  def.locals = locals_;
  def.code = std::move(code_);
  for (const auto& h : pending_handlers_) {
    ExHandler eh;
    eh.kind = h.kind;
    eh.try_begin = resolve(h.try_begin);
    eh.try_end = resolve(h.try_end);
    eh.handler = resolve(h.handler);
    eh.catch_class = h.catch_class;
    def.handlers.push_back(eh);
  }
  return module_.add_method(std::move(def));
}

}  // namespace hpcnet::vm

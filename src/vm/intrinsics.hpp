// The base-class-library surface the benchmarks need, exposed to CIL as
// intrinsic calls: the full System.Math routine set measured by Graphs 6-8,
// System.Threading (Thread/Monitor) for the Table-2/3 benchmarks, the binary
// serializer for the Serial micro-benchmark, console/timing utilities, and
// GC.Collect.
//
// The registry is a fixed compile-time table (like a frozen mscorlib): the
// verifier reads signatures from it, and every engine dispatches through the
// same handlers — so the library cost is identical across engines except
// where a profile's `fast_math` flag lets the Optimizing tier inline the
// pure-math entries into its register IR (the CLR-vs-JVM Math difference the
// paper reports).
#pragma once

#include <cstdint>

#include "vm/module.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

struct VMContext;

/// Intrinsic identifiers. Order is ABI: ids are stored in CIL instructions.
enum Intr : std::int32_t {
  // System.Math — graphs 6, 7, 8 (one entry per routine the paper plots).
  I_ABS_I4 = 0,
  I_ABS_I8,
  I_ABS_R4,
  I_ABS_R8,
  I_MAX_I4,
  I_MAX_I8,
  I_MAX_R4,
  I_MAX_R8,
  I_MIN_I4,
  I_MIN_I8,
  I_MIN_R4,
  I_MIN_R8,
  I_SIN,
  I_COS,
  I_TAN,
  I_ASIN,
  I_ACOS,
  I_ATAN,
  I_ATAN2,
  I_FLOOR,
  I_CEIL,
  I_SQRT,
  I_EXP,
  I_LOG,
  I_POW,
  I_RINT,
  I_ROUND_R4,  // -> i32, round-half-even like Math.Round
  I_ROUND_R8,  // -> i64
  I_RANDOM,    // Math.random() -> f64 in [0,1)

  // System.Threading.
  I_THREAD_START,  // (i32 method_id, ref arg) -> ref handle
  I_THREAD_JOIN,   // (ref handle) -> void
  I_THREAD_ID,     // () -> i32 current managed thread id
  I_THREAD_YIELD,  // () -> void
  I_THREAD_SLEEP,  // (i32 millis) -> void
  I_MON_ENTER,     // (ref) -> void
  I_MON_EXIT,
  I_MON_WAIT,
  I_MON_PULSE,
  I_MON_PULSEALL,

  // Serialization (Serial micro-benchmark).
  I_SERIALIZE,    // (ref root) -> ref byte array
  I_DESERIALIZE,  // (ref byte array) -> ref root

  // Utilities.
  I_NOW_NS,      // () -> i64 monotonic nanoseconds
  I_STRLEN,      // (ref string) -> i32
  I_GC_COLLECT,  // () -> void
  I_PRINT_I4,    // (i32) -> void (stdout; debugging aid)
  I_PRINT_R8,
  I_PRINT_STR,
  I_GC_PRETOUCH,  // (ref array) -> void: promote a long-lived primitive
                  // array out of the nursery (see Heap::pretouch)

  I_COUNT_,
};

/// Handler ABI: args[0..n) are the declared parameters; the return value (if
/// any) is written to *ret. Handlers may set ctx.pending_exception.
using IntrinsicFn = void (*)(VMContext& ctx, const Slot* args, Slot* ret);

struct IntrinsicDef {
  const char* name;
  MethodSig sig;
  IntrinsicFn fn;
  /// Pure-math entries the Optimizing tier may inline when fast_math is set.
  bool pure_math;
};

/// Lookup; id must be in [0, I_COUNT_).
const IntrinsicDef& intrinsic(std::int32_t id);

}  // namespace hpcnet::vm

// Managed heap: objects, 1-D arrays, true rank-2 arrays, boxes and strings,
// with a stop-the-world mark-sweep collector. The CLI requires automatic heap
// management; the benchmarks (Create, Serial, Boxing, the SciMark kernels'
// array traffic) all allocate through here.
//
// Collection protocol: allocation is the only GC trigger. When the allocation
// budget is exceeded, the allocating thread asks the VirtualMachine (via the
// gc_requester callback) to bring all managed threads to safepoints and then
// runs mark (from the roots the VM enumerates) and sweep.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <vector>

#include "vm/module.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

enum class ObjKind : std::uint8_t { Instance, Array, Matrix2, Boxed, String };

struct ObjHeader {
  std::int32_t klass = -1;   // class id for Instance; -1 otherwise
  ObjKind kind = ObjKind::Instance;
  ValType elem = ValType::None;  // element type for Array/Matrix2/Boxed
  bool marked = false;
  std::uint32_t lock_id = 0;  // 1-based monitor-table index, 0 = never locked
  std::int32_t length = 0;    // Array: elements; Matrix2: rows; String: bytes;
                              // Instance: field count; Boxed: 1
  std::int32_t cols = 0;      // Matrix2 only

  // Payload follows the header, 8-byte aligned.
  Slot* fields() { return reinterpret_cast<Slot*>(this + 1); }
  const Slot* fields() const { return reinterpret_cast<const Slot*>(this + 1); }
  void* data() { return this + 1; }
  const void* data() const { return this + 1; }

  std::int32_t* i32_data() { return static_cast<std::int32_t*>(data()); }
  std::int64_t* i64_data() { return static_cast<std::int64_t*>(data()); }
  float* f32_data() { return static_cast<float*>(data()); }
  double* f64_data() { return static_cast<double*>(data()); }
  ObjRef* ref_data() { return static_cast<ObjRef*>(data()); }
  char* chars() { return static_cast<char*>(data()); }
  const char* chars() const { return static_cast<const char*>(data()); }
};

/// Bytes per element for array storage.
std::size_t elem_size(ValType t);

struct HeapStats {
  std::size_t live_objects = 0;
  std::size_t live_bytes = 0;
  std::size_t total_allocations = 0;
  std::size_t collections = 0;
  std::size_t swept_objects = 0;
};

class Heap {
 public:
  /// `module` supplies field layouts for marking instances.
  explicit Heap(Module* module, std::size_t gc_threshold_bytes = 64u << 20);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Called (with the allocation lock *not* held) when the budget is
  /// exceeded; responsible for stopping the world and calling collect().
  void set_gc_requester(std::function<void()> fn) { gc_requester_ = std::move(fn); }

  ObjRef alloc_instance(std::int32_t class_id);
  ObjRef alloc_array(ValType elem, std::int32_t length);
  ObjRef alloc_matrix2(ValType elem, std::int32_t rows, std::int32_t cols);
  ObjRef alloc_box(ValType type, Slot value);
  ObjRef alloc_string(const std::string& s);

  /// Mark phase: call mark() for every root, then trace().
  void mark(ObjRef root);
  /// Sweep unmarked objects and reset marks. World must be stopped.
  void sweep();

  HeapStats stats() const;
  std::size_t bytes_since_gc() const { return bytes_since_gc_; }
  void set_threshold(std::size_t bytes) { threshold_ = bytes; }

  /// Forces a full collection via the registered requester (tests/examples).
  void request_gc();

 private:
  ObjRef alloc_raw(std::size_t payload_bytes);
  void trace(ObjRef obj, std::vector<ObjRef>& worklist);

  Module* module_;
  std::function<void()> gc_requester_;
  mutable std::mutex mu_;
  std::vector<ObjRef> objects_;
  std::vector<std::size_t> sizes_;  // parallel to objects_ (payload+header)
  std::size_t bytes_since_gc_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t threshold_;
  HeapStats stats_{};
};

/// String helpers.
std::string string_value(ObjRef s);

}  // namespace hpcnet::vm

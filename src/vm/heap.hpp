// Managed heap: objects, 1-D arrays, true rank-2 arrays, boxes and strings,
// with a stop-the-world mark-sweep collector. The CLI requires automatic heap
// management; the benchmarks (Create, Serial, Boxing, the SciMark kernels'
// array traffic) all allocate through here.
//
// Storage design (DESIGN.md §7): the heap hands out aligned, page-multiple
// 64 KiB *segments* under its lock; each mutator thread owns a *TLAB*
// (thread-local allocation buffer) — a bump-pointer window into a segment or
// into a free run recovered by the sweeper — and allocates objects inside it
// with zero synchronization. The lock is taken only to refill an exhausted
// TLAB (one lock acquisition per ~64 KiB of allocation instead of one per
// object) and for oversized objects (> 1/4 segment), which go to a dedicated
// large-object list. Every segment is kept fully tiled with object headers
// (dead space is covered by ObjKind::Free filler headers), so the sweeper can
// walk a segment linearly using the per-object size stored in the header.
//
// Collection protocol: allocation is the only GC trigger. Allocated-byte
// counts accumulate per-TLAB and are folded into the heap's atomic
// bytes_since_gc_ at refill points; when the folded total exceeds the budget,
// the refilling thread asks the VirtualMachine (via the gc_requester
// callback) to bring all managed threads to safepoints and then runs mark
// (from the roots the VM enumerates) and sweep. Sweep retires every
// registered TLAB (the world is stopped, so their owners are parked), builds
// per-segment free runs from dead space, and returns fully-dead segments to
// a reusable pool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "vm/module.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

/// Free is a filler pseudo-object covering dead space inside a segment so the
/// sweeper can walk segments linearly; it is never visible to managed code.
enum class ObjKind : std::uint8_t { Instance, Array, Matrix2, Boxed, String,
                                    Free };

struct ObjHeader {
  std::int32_t klass = -1;   // class id for Instance; -1 otherwise
  ObjKind kind = ObjKind::Instance;
  ValType elem = ValType::None;  // element type for Array/Matrix2/Boxed
  bool marked = false;
  std::uint32_t lock_id = 0;  // 1-based monitor-table index, 0 = never locked
  std::int32_t length = 0;    // Array: elements; Matrix2: rows; String: bytes;
                              // Instance: field count; Boxed: 1
  std::int32_t cols = 0;      // Matrix2 only
  std::uint32_t alloc_bytes = 0;  // total block size (header + payload + pad)
                                  // for segment-resident objects; the sweeper
                                  // walks segments by this. 0 for objects on
                                  // the large-object list (side table holds
                                  // their sizes, which may exceed 4 GiB).

  // Payload follows the header, 8-byte aligned.
  Slot* fields() { return reinterpret_cast<Slot*>(this + 1); }
  const Slot* fields() const { return reinterpret_cast<const Slot*>(this + 1); }
  void* data() { return this + 1; }
  const void* data() const { return this + 1; }

  std::int32_t* i32_data() { return static_cast<std::int32_t*>(data()); }
  std::int64_t* i64_data() { return static_cast<std::int64_t*>(data()); }
  float* f32_data() { return static_cast<float*>(data()); }
  double* f64_data() { return static_cast<double*>(data()); }
  ObjRef* ref_data() { return static_cast<ObjRef*>(data()); }
  char* chars() { return static_cast<char*>(data()); }
  const char* chars() const { return static_cast<const char*>(data()); }
};

/// Bytes per element for array storage.
std::size_t elem_size(ValType t);

struct HeapStats {
  std::size_t live_objects = 0;
  std::size_t live_bytes = 0;
  std::size_t total_allocations = 0;
  std::size_t collections = 0;
  std::size_t swept_objects = 0;
  std::size_t segments = 0;        // active (walkable) segments
  std::size_t pooled_segments = 0; // empty segments awaiting reuse
  std::size_t large_objects = 0;   // live entries on the large-object list
};

/// A tenant's allocation budget (src/vm/service, DESIGN.md §11): a shared
/// atomic pool of bytes that TLAB refills and large-object allocations charge
/// against before taking heap space. When a charge would overdraw the pool
/// the allocation is refused (alloc_* return nullptr) and the engines raise a
/// managed OutOfMemoryException — one tenant's allocation storm cannot take
/// heap headroom from a co-tenant. Granularity: a budgeted TLAB refill always
/// charges exactly one kSegmentBytes granule (bumps inside the window are
/// then free), independent of fragmentation state, so the budget-kill point
/// is deterministic; the large-object path charges exact sizes.
class AllocBudget {
 public:
  /// Limits above INT64_MAX clamp to INT64_MAX (the pool arithmetic is
  /// signed): an over-wide configuration means "effectively unmetered", not
  /// a pool that starts overdrawn.
  explicit AllocBudget(std::uint64_t limit_bytes)
      : remaining_(static_cast<std::int64_t>(std::min<std::uint64_t>(
            limit_bytes, std::numeric_limits<std::int64_t>::max()))) {}

  /// Attempts to take `bytes` from the pool; false when it would overdraw.
  bool try_charge(std::uint64_t bytes) {
    if (bytes > static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max())) {
      return false;  // can never fit in a clamped pool; the cast would wrap
    }
    std::int64_t cur = remaining_.load(std::memory_order_relaxed);
    while (cur >= static_cast<std::int64_t>(bytes)) {
      if (remaining_.compare_exchange_weak(
              cur, cur - static_cast<std::int64_t>(bytes),
              std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Returns bytes to the pool (job teardown: the budget bounds a tenant's
  /// in-flight allocation, not its lifetime total; killed jobs' garbage is
  /// reclaimed by the next GC). Only charged amounts may be released, so the
  /// clamped cast cannot be reached in practice.
  void release(std::uint64_t bytes) {
    remaining_.fetch_add(static_cast<std::int64_t>(std::min<std::uint64_t>(
                             bytes, std::numeric_limits<std::int64_t>::max())),
                         std::memory_order_relaxed);
  }

  std::int64_t remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> remaining_;
};

/// A thread's bump-allocation window. Owned by the mutator's VMContext and
/// registered with the Heap while the thread is attached; only the owning
/// thread touches it while the world is running, so the allocation fast path
/// needs no synchronization. The sweeper retires all registered TLABs during
/// the stop-the-world window (the park handshake provides the
/// happens-before edge TSan needs).
class Tlab {
 public:
  Tlab() = default;
  Tlab(const Tlab&) = delete;
  Tlab& operator=(const Tlab&) = delete;

  /// Binds (or, with nullptr, unbinds) a tenant budget: subsequent refills
  /// and large allocations through this TLAB charge the budget and are
  /// refused when it runs dry. Resets budget_charged(). Callers should
  /// retire the TLAB around bind/unbind (Heap::retire_tlab) so a window
  /// acquired under one accounting regime is not consumed under another.
  void bind_budget(AllocBudget* b) {
    budget_ = b;
    budget_charged_ = 0;
  }
  AllocBudget* budget() const { return budget_; }
  /// Bytes charged to the bound budget since bind_budget().
  std::uint64_t budget_charged() const { return budget_charged_; }

 private:
  friend class Heap;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  // Allocation accounting since the last fold into the heap's shared
  // counters (see Heap::fold_locked).
  std::uint64_t pending_allocs_ = 0;
  std::uint64_t pending_bytes_ = 0;
  // Tenant accounting (null = unmetered; the heap-shared TLAB is always
  // unmetered, which is why metered jobs must never route through it).
  AllocBudget* budget_ = nullptr;
  std::uint64_t budget_charged_ = 0;
};

class Heap {
 public:
  /// Segment granule handed to TLABs. Page-multiple; one lock acquisition
  /// per segment of allocation instead of one per object.
  static constexpr std::size_t kSegmentBytes = 64u << 10;
  /// Blocks of at least this total size bypass TLABs for the large-object
  /// list (they would waste too much of a segment).
  static constexpr std::size_t kLargeThreshold = kSegmentBytes / 4;
  /// Empty segments kept for reuse before being returned to the OS.
  static constexpr std::size_t kMaxPooledSegments = 256;

  /// `module` supplies field layouts for marking instances.
  explicit Heap(Module* module, std::size_t gc_threshold_bytes = 64u << 20);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Called (with the allocation lock *not* held) when the budget is
  /// exceeded; responsible for stopping the world and calling collect().
  void set_gc_requester(std::function<void()> fn) { gc_requester_ = std::move(fn); }

  /// Registers a mutator's TLAB. Call from the owning thread once it is
  /// attached (and before it allocates through the TLAB); unregister before
  /// the thread detaches. Registration is what lets sweep() retire the
  /// buffer at the GC rendezvous.
  void register_tlab(Tlab& tlab);
  void unregister_tlab(Tlab& tlab);

  /// Folds and retires `tlab`'s current window from the owning thread (the
  /// remainder becomes walkable filler). The service layer calls this around
  /// AllocBudget bind/unbind so no window crosses accounting regimes.
  void retire_tlab(Tlab& tlab);

  /// Allocation. Passing the calling thread's registered TLAB takes the
  /// lock-free bump fast path; with tlab == nullptr the allocation is served
  /// from a heap-shared buffer under the lock (the pre-TLAB behaviour, kept
  /// for native callers without a VMContext and as the bench baseline).
  /// When the TLAB has a bound AllocBudget that refuses the charge, these
  /// return nullptr (the engines turn that into a managed
  /// OutOfMemoryException); unmetered allocation never returns nullptr.
  ObjRef alloc_instance(std::int32_t class_id, Tlab* tlab = nullptr);
  ObjRef alloc_array(ValType elem, std::int32_t length, Tlab* tlab = nullptr);
  ObjRef alloc_matrix2(ValType elem, std::int32_t rows, std::int32_t cols,
                       Tlab* tlab = nullptr);
  ObjRef alloc_box(ValType type, Slot value, Tlab* tlab = nullptr);
  ObjRef alloc_string(const std::string& s, Tlab* tlab = nullptr);

  /// Mark phase: call mark() for every root, then trace().
  void mark(ObjRef root);
  /// Sweep unmarked objects and reset marks. World must be stopped: retires
  /// all registered TLABs, walks segments building free runs, pools
  /// fully-dead segments, sweeps the large-object list.
  void sweep();

  /// Counts are exact once the threads whose allocations are being counted
  /// have been joined (their TLAB pendings are read under the lock).
  HeapStats stats() const;
  std::size_t bytes_since_gc() const;
  void set_threshold(std::size_t bytes);

  /// Forces a full collection via the registered requester (tests/examples).
  void request_gc();

 private:
  struct Segment;
  struct FreeRun {
    char* p = nullptr;
    std::size_t bytes = 0;
  };

  ObjRef alloc_raw(std::size_t payload_bytes, Tlab* tlab);
  ObjRef alloc_slow(std::size_t total, Tlab* tlab);
  ObjRef bump(Tlab& t, std::size_t total);
  void fold_locked(Tlab& t);
  void retire_locked(Tlab& t, bool count_waste);
  /// False when the TLAB's bound budget refuses the region charge.
  bool acquire_region_locked(Tlab& t, std::size_t total);
  void trace(ObjRef obj, std::vector<ObjRef>& worklist);

  Module* module_;
  std::function<void()> gc_requester_;
  mutable std::mutex mu_;

  // Segment store. segments_ holds walkable segments (fully tiled with
  // object/filler headers outside live TLAB windows); pool_ holds empty
  // segments awaiting reuse.
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Segment>> pool_;
  std::vector<FreeRun> free_runs_;  // dead runs inside live segments,
                                    // rebuilt by each sweep

  // Large-object list (blocks >= kLargeThreshold), swept individually.
  std::vector<ObjRef> large_;
  std::vector<std::size_t> large_sizes_;  // parallel to large_

  std::vector<Tlab*> tlabs_;  // registered mutator TLABs (+ shared_tlab_)
  Tlab shared_tlab_;          // serves tlab-less callers, used under mu_

  // GC-trigger protocol: the bump fast path never checks the budget; each
  // TLAB's byte count is folded into this atomic at refill points (under
  // mu_) and the refilling/large-allocating thread compares it against
  // threshold_ *before* acquiring new space, calling the requester with no
  // locks held. sweep() resets it while the world is stopped. Atomic so
  // the unlocked compare is well-defined against the sweeper's reset.
  std::atomic<std::size_t> bytes_since_gc_{0};
  std::size_t threshold_;

  // Authoritative at fold points; sweep() recomputes live_* exactly from
  // the mark bits.
  std::size_t live_bytes_ = 0;
  std::size_t live_objects_ = 0;
  HeapStats stats_{};
};

/// String helpers.
std::string string_value(ObjRef s);

}  // namespace hpcnet::vm

// Managed heap: objects, 1-D arrays, true rank-2 arrays, boxes and strings,
// with a generational, parallel stop-the-world mark-sweep collector. The CLI
// requires automatic heap management; the benchmarks (Create, Serial, Boxing,
// the SciMark kernels' array traffic) all allocate through here.
//
// Storage design (DESIGN.md §7): the heap hands out 64 KiB-aligned *segments*
// under its lock; each mutator thread owns a *TLAB* (thread-local allocation
// buffer) — a bump-pointer window into a segment or into a free run recovered
// by the sweeper — and allocates objects inside it with zero synchronization.
// The lock is taken only to refill an exhausted TLAB (one lock acquisition
// per ~64 KiB of allocation instead of one per object) and for oversized
// objects (> 1/4 segment), which go to a dedicated large-object list. Every
// segment is kept fully tiled with object headers (dead space is covered by
// ObjKind::Free filler headers), so the sweeper can walk a segment linearly
// using the per-object size stored in the header. Each segment embeds a card
// table in its first kGcSegmentMetaBytes: the write barrier masks the object
// address down to the segment base and dirties the 512-byte card holding the
// object's header.
//
// Generations (non-moving): the GcFrame root protocol hands out roots by
// value, so objects can never move — the nursery is therefore *logical*:
// every region handed to a TLAB since the last collection is a young window,
// and a minor collection marks only from young roots plus the dirty cards of
// old objects, sweeps only the young windows, and promotes every survivor in
// place by setting the kGcOld header bit (promotion threshold = one
// collection, which is exactly what makes clearing the scanned cards sound:
// after the sweep an old->young edge has become old->old). A major
// collection marks the full heap with a parallel worker pool and sweeps
// segment-at-a-time across threads; segments are independently walkable so
// workers claim them with one atomic increment.
//
// Collection protocol: allocation is the only GC trigger. Allocated-byte
// counts accumulate per-TLAB and are folded into the heap's atomic
// bytes_since_gc_ at refill points; when the folded total exceeds the budget,
// the refilling thread asks the VirtualMachine (via the gc_requester
// callback) to bring all managed threads to safepoints and then runs
// gc_prepare / mark(root)* / gc_perform. The requested kind is Minor unless
// the promoted (old-generation) byte count has outgrown its own threshold.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "vm/module.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

/// Free is a filler pseudo-object covering dead space inside a segment so the
/// sweeper can walk segments linearly; it is never visible to managed code.
enum class ObjKind : std::uint8_t { Instance, Array, Matrix2, Boxed, String,
                                    Free };

/// Which collection the rendezvous runs: Minor traces young windows + dirty
/// cards and promotes survivors; Major marks and sweeps the whole heap.
enum class GcKind : std::uint8_t { Minor, Major };

struct ObjHeader {
  /// gc_state bit layout. Marked is claimed with a relaxed fetch_or so
  /// parallel markers race benignly; Old is the promotion bit (set once,
  /// under stop-the-world); Remembered is the large-object stand-in for a
  /// dirty card (large blocks are not segment-aligned, so the barrier cannot
  /// mask their address down to a card table).
  static constexpr std::uint8_t kGcMarked = 1;
  static constexpr std::uint8_t kGcOld = 2;
  static constexpr std::uint8_t kGcRemembered = 4;

  std::int32_t klass = -1;   // class id for Instance; -1 otherwise
  ObjKind kind = ObjKind::Instance;
  ValType elem = ValType::None;  // element type for Array/Matrix2/Boxed
  std::atomic<std::uint8_t> gc_state{0};  // kGc* bits; 0 = young, unmarked
  std::uint32_t lock_id = 0;  // 1-based monitor-table index, 0 = never locked
  std::int32_t length = 0;    // Array: elements; Matrix2: rows; String: bytes;
                              // Instance: field count; Boxed: 1
  std::int32_t cols = 0;      // Matrix2 only
  std::uint32_t alloc_bytes = 0;  // total block size (header + payload + pad)
                                  // for segment-resident objects; the sweeper
                                  // walks segments by this. 0 for objects on
                                  // the large-object list (side table holds
                                  // their sizes, which may exceed 4 GiB).

  bool is_marked() const {
    return (gc_state.load(std::memory_order_relaxed) & kGcMarked) != 0;
  }
  bool is_old() const {
    return (gc_state.load(std::memory_order_relaxed) & kGcOld) != 0;
  }
  /// Claims the mark bit; true when this caller won the claim. Relaxed is
  /// enough: the pool handshake orders marking against mutation, and
  /// duplicate tracing (the only race) is idempotent.
  bool try_mark() {
    return (gc_state.fetch_or(kGcMarked, std::memory_order_relaxed) &
            kGcMarked) == 0;
  }

  // Payload follows the header, 8-byte aligned.
  Slot* fields() { return reinterpret_cast<Slot*>(this + 1); }
  const Slot* fields() const { return reinterpret_cast<const Slot*>(this + 1); }
  void* data() { return this + 1; }
  const void* data() const { return this + 1; }

  std::int32_t* i32_data() { return static_cast<std::int32_t*>(data()); }
  std::int64_t* i64_data() { return static_cast<std::int64_t*>(data()); }
  float* f32_data() { return static_cast<float*>(data()); }
  double* f64_data() { return static_cast<double*>(data()); }
  ObjRef* ref_data() { return static_cast<ObjRef*>(data()); }
  char* chars() { return static_cast<char*>(data()); }
  const char* chars() const { return static_cast<const char*>(data()); }
};

/// Segment geometry, shared by the allocator and the inline write barrier.
/// Segments are allocated at kGcSegmentBytes alignment so the barrier can
/// reach the embedded card table with one mask.
inline constexpr std::size_t kGcSegmentBytes = 64u << 10;
inline constexpr std::size_t kGcCardShift = 9;  // 512-byte cards
inline constexpr std::size_t kGcCardsPerSegment =
    kGcSegmentBytes >> kGcCardShift;
/// Bytes reserved at the start of every segment for SegmentMeta; the object
/// area (and every TLAB window) starts after it.
inline constexpr std::size_t kGcSegmentMetaBytes = 256;

/// Embedded at the base of every segment. One card byte per 512 bytes of
/// segment; the barrier dirties the card containing the stored-to object's
/// HEADER (scanning re-derives field spans from the header, so header-granule
/// cards are enough and stay valid when free runs are coalesced). dirty_any
/// marks the segment as enqueued on its heap's intrusive dirty list
/// (next_dirty / dirty_list): the first barrier hit on a clean segment
/// pushes its meta onto the list, and a minor collection scans exactly the
/// listed segments — pause cost tracks the number of *dirtied* segments,
/// not the size of the old generation, which is what keeps minor pauses
/// flat as the heap grows.
struct SegmentMeta {
  std::atomic<std::uint8_t> cards[kGcCardsPerSegment] = {};
  std::atomic<std::uint8_t> dirty_any{0};
  /// Treiber-stack link; meaningful only while dirty_any is set.
  std::atomic<SegmentMeta*> next_dirty{nullptr};
  /// The owning heap's dirty-list head, set once when the segment enters
  /// service (the barrier has no heap reference — only the masked address).
  std::atomic<SegmentMeta*>* dirty_list = nullptr;

  void clear() {
    for (auto& c : cards) c.store(0, std::memory_order_relaxed);
    dirty_any.store(0, std::memory_order_relaxed);
    next_dirty.store(nullptr, std::memory_order_relaxed);
  }
};
static_assert(sizeof(SegmentMeta) <= kGcSegmentMetaBytes,
              "card table must fit the reserved segment prefix");

/// Old->young write barrier. Call after storing a reference into `obj` (a
/// non-null object that may be old); every ref-store site in all three
/// engine tiers, the serializer's fixup pass and the RegIR CARDMARK op go
/// through here. Deliberately unconditional (no "is old?" load): two relaxed
/// byte stores are cheaper than a dependent branch, and the minor scan
/// filters young objects anyway. Large objects (alloc_bytes == 0) are not
/// segment-aligned, so they use the kGcRemembered header bit instead of a
/// card — masking their address would touch unmapped memory.
inline void gc_write_barrier(ObjRef obj) {
  if (obj->alloc_bytes != 0) {
    const auto addr = reinterpret_cast<std::uintptr_t>(obj);
    auto* meta = reinterpret_cast<SegmentMeta*>(addr & ~(kGcSegmentBytes - 1));
    meta->cards[(addr & (kGcSegmentBytes - 1)) >> kGcCardShift].store(
        1, std::memory_order_relaxed);
    // First store into a clean segment enqueues it on the heap's dirty
    // list (lock-free push; the exchange arbitrates racing first-storers).
    // Repeat stores cost one extra relaxed load on the card's cache line.
    if (meta->dirty_any.load(std::memory_order_relaxed) == 0 &&
        meta->dirty_any.exchange(1, std::memory_order_relaxed) == 0) {
      SegmentMeta* head = meta->dirty_list->load(std::memory_order_relaxed);
      do {
        meta->next_dirty.store(head, std::memory_order_relaxed);
      } while (!meta->dirty_list->compare_exchange_weak(
          head, meta, std::memory_order_release, std::memory_order_relaxed));
    }
  } else {
    obj->gc_state.fetch_or(ObjHeader::kGcRemembered,
                           std::memory_order_relaxed);
  }
}

/// Bytes per element for array storage.
std::size_t elem_size(ValType t);

struct HeapStats {
  std::size_t live_objects = 0;
  std::size_t live_bytes = 0;
  std::size_t total_allocations = 0;
  std::size_t collections = 0;       // minor + major
  std::size_t minor_collections = 0;
  std::size_t major_collections = 0;
  std::size_t swept_objects = 0;
  std::size_t promoted_bytes = 0;    // cumulative survivor bytes turned old
  std::size_t old_bytes = 0;         // current old-generation live bytes
  std::size_t segments = 0;        // active (walkable) segments
  std::size_t pooled_segments = 0; // empty segments awaiting reuse
  std::size_t large_objects = 0;   // live entries on the large-object list
};

/// A tenant's allocation budget (src/vm/service, DESIGN.md §11): a shared
/// atomic pool of bytes that TLAB refills and large-object allocations charge
/// against before taking heap space. When a charge would overdraw the pool
/// the allocation is refused (alloc_* return nullptr) and the engines raise a
/// managed OutOfMemoryException — one tenant's allocation storm cannot take
/// heap headroom from a co-tenant. Granularity: a budgeted TLAB refill always
/// charges exactly one kSegmentBytes granule (bumps inside the window are
/// then free), independent of fragmentation state, so the budget-kill point
/// is deterministic; the large-object path charges exact sizes. Promotion
/// charges nothing: the budget caps a tenant's in-flight allocation, and a
/// survivor's bytes were already paid for at refill time.
class AllocBudget {
 public:
  /// Limits above INT64_MAX clamp to INT64_MAX (the pool arithmetic is
  /// signed): an over-wide configuration means "effectively unmetered", not
  /// a pool that starts overdrawn.
  explicit AllocBudget(std::uint64_t limit_bytes)
      : remaining_(static_cast<std::int64_t>(std::min<std::uint64_t>(
            limit_bytes, std::numeric_limits<std::int64_t>::max()))) {}

  /// Attempts to take `bytes` from the pool; false when it would overdraw.
  bool try_charge(std::uint64_t bytes) {
    if (bytes > static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max())) {
      return false;  // can never fit in a clamped pool; the cast would wrap
    }
    std::int64_t cur = remaining_.load(std::memory_order_relaxed);
    while (cur >= static_cast<std::int64_t>(bytes)) {
      if (remaining_.compare_exchange_weak(
              cur, cur - static_cast<std::int64_t>(bytes),
              std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Returns bytes to the pool (job teardown: the budget bounds a tenant's
  /// in-flight allocation, not its lifetime total; killed jobs' garbage is
  /// reclaimed by the next GC). Only charged amounts may be released, so the
  /// clamped cast cannot be reached in practice.
  void release(std::uint64_t bytes) {
    remaining_.fetch_add(static_cast<std::int64_t>(std::min<std::uint64_t>(
                             bytes, std::numeric_limits<std::int64_t>::max())),
                         std::memory_order_relaxed);
  }

  std::int64_t remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> remaining_;
};

/// A thread's bump-allocation window. Owned by the mutator's VMContext and
/// registered with the Heap while the thread is attached; only the owning
/// thread touches it while the world is running, so the allocation fast path
/// needs no synchronization. The sweeper retires all registered TLABs during
/// the stop-the-world window (the park handshake provides the
/// happens-before edge TSan needs).
class Tlab {
 public:
  Tlab() = default;
  Tlab(const Tlab&) = delete;
  Tlab& operator=(const Tlab&) = delete;

  /// Binds (or, with nullptr, unbinds) a tenant budget: subsequent refills
  /// and large allocations through this TLAB charge the budget and are
  /// refused when it runs dry. Resets budget_charged(). Callers should
  /// retire the TLAB around bind/unbind (Heap::retire_tlab) so a window
  /// acquired under one accounting regime is not consumed under another.
  void bind_budget(AllocBudget* b) {
    budget_ = b;
    budget_charged_ = 0;
  }
  AllocBudget* budget() const { return budget_; }
  /// Bytes charged to the bound budget since bind_budget().
  std::uint64_t budget_charged() const { return budget_charged_; }

 private:
  friend class Heap;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  // Allocation accounting since the last fold into the heap's shared
  // counters (see Heap::fold_locked).
  std::uint64_t pending_allocs_ = 0;
  std::uint64_t pending_bytes_ = 0;
  // Tenant accounting (null = unmetered; the heap-shared TLAB is always
  // unmetered, which is why metered jobs must never route through it).
  AllocBudget* budget_ = nullptr;
  std::uint64_t budget_charged_ = 0;
};

class Heap {
 public:
  /// Segment granule handed to TLABs. Aligned to its own size so the write
  /// barrier reaches the embedded card table with one mask; one lock
  /// acquisition per segment of allocation instead of one per object.
  static constexpr std::size_t kSegmentBytes = kGcSegmentBytes;
  /// Blocks of at least this total size bypass TLABs for the large-object
  /// list (they would waste too much of a segment).
  static constexpr std::size_t kLargeThreshold = kSegmentBytes / 4;
  /// Empty segments kept for reuse before being returned to the OS.
  static constexpr std::size_t kMaxPooledSegments = 256;

  /// `module` supplies field layouts for marking instances. GC worker count
  /// defaults from HPCNET_GC_THREADS, clamped to hardware concurrency.
  explicit Heap(Module* module, std::size_t gc_threshold_bytes = 64u << 20);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Called (with the allocation lock *not* held) when a trigger fires;
  /// responsible for stopping the world and running the requested
  /// collection via gc_prepare / mark / gc_perform.
  void set_gc_requester(std::function<void(GcKind)> fn) {
    gc_requester_ = std::move(fn);
  }

  /// Registers a mutator's TLAB. Call from the owning thread once it is
  /// attached (and before it allocates through the TLAB); unregister before
  /// the thread detaches. Registration is what lets the collector retire the
  /// buffer at the GC rendezvous.
  void register_tlab(Tlab& tlab);
  void unregister_tlab(Tlab& tlab);

  /// Folds and retires `tlab`'s current window from the owning thread (the
  /// remainder becomes walkable filler). The service layer calls this around
  /// AllocBudget bind/unbind so no window crosses accounting regimes.
  void retire_tlab(Tlab& tlab);

  /// Allocation. Passing the calling thread's registered TLAB takes the
  /// lock-free bump fast path; with tlab == nullptr the allocation is served
  /// from a heap-shared buffer under the lock (the pre-TLAB behaviour, kept
  /// for native callers without a VMContext and as the bench baseline).
  /// When the TLAB has a bound AllocBudget that refuses the charge, these
  /// return nullptr (the engines turn that into a managed
  /// OutOfMemoryException); unmetered allocation never returns nullptr.
  ObjRef alloc_instance(std::int32_t class_id, Tlab* tlab = nullptr);
  ObjRef alloc_array(ValType elem, std::int32_t length, Tlab* tlab = nullptr);
  ObjRef alloc_matrix2(ValType elem, std::int32_t rows, std::int32_t cols,
                       Tlab* tlab = nullptr);
  ObjRef alloc_box(ValType type, Slot value, Tlab* tlab = nullptr);
  ObjRef alloc_string(const std::string& s, Tlab* tlab = nullptr);

  /// Collection, under stop-the-world, in three steps driven by the VM:
  /// gc_prepare retires every registered TLAB (and, before a major, drains
  /// any lazily-unswept segments so stale mark bits cannot leak into the
  /// fresh mark); mark() is called once per root and enqueues it on the
  /// member worklist — for a minor collection, old roots are skipped (the
  /// old generation is live by assumption; its young edges come from the
  /// card scan); gc_perform finishes marking (card/remembered scan on minor,
  /// parallel drain on major) and sweeps (young windows on minor, the whole
  /// heap — in parallel across segments — on major).
  void gc_prepare(GcKind kind);
  void mark(ObjRef root);
  void gc_perform(GcKind kind);

  /// Worker threads the major path may use for mark and sweep (1 = serial).
  /// Workers are spawned lazily at the first parallel collection and park on
  /// a condition variable between GCs; they never touch the heap while
  /// mutators run. Also settable via HPCNET_GC_THREADS.
  void set_gc_threads(int n);
  int gc_threads() const;

  /// Experimental fallback (HPCNET_GC_LAZY_SWEEP=1): a major collection
  /// defers segment sweeping; each TLAB refill that finds no free run sweeps
  /// one deferred segment. Live counters are approximate until the deferred
  /// list drains (stats() drains it to stay exact).
  void set_lazy_sweep(bool on);

  /// Counts are exact once the threads whose allocations are being counted
  /// have been joined (their TLAB pendings are read under the lock). Drains
  /// any lazily-unswept segments first so the census is exact.
  HeapStats stats();
  std::size_t bytes_since_gc() const;
  void set_threshold(std::size_t bytes);

  /// Forces a full (major) collection via the registered requester
  /// (tests/examples, the GC.Collect intrinsic).
  void request_gc();

  /// GC.PretouchArray: hint that a freshly allocated primitive array is a
  /// long-lived working set. Large-object-list arrays (the only allocations
  /// big enough for the hint to matter) are promoted to the old generation
  /// on the spot — minor collections then neither trace nor sweep them, and
  /// their pages stay where the first-touch policy put them. Segment-resident
  /// objects, ref-element arrays (which would need card tracking) and
  /// already-old objects are left to the normal promotion path; null is
  /// ignored. Safe to call from any mutator thread.
  void pretouch(ObjRef obj);

 private:
  struct Segment;
  struct FreeRun {
    char* p = nullptr;
    std::size_t bytes = 0;
  };
  /// A TLAB region handed out since the last collection: the logical
  /// nursery. Rebuilt from scratch each cycle (every survivor promotes).
  struct YoungWindow {
    char* begin = nullptr;
    char* end = nullptr;
  };
  /// Per-segment result of a (possibly parallel) major sweep; workers write
  /// only the slot of the segment index they claimed, so no merging locks.
  struct SegmentSweep {
    bool any_live = false;
    std::size_t live_objects = 0;
    std::size_t live_bytes = 0;
    std::size_t swept = 0;
    std::size_t freed = 0;
    std::size_t promoted = 0;
    std::vector<FreeRun> runs;
  };

  ObjRef alloc_raw(std::size_t payload_bytes, Tlab* tlab);
  ObjRef alloc_slow(std::size_t total, Tlab* tlab);
  ObjRef bump(Tlab& t, std::size_t total);
  void fold_locked(Tlab& t);
  void retire_locked(Tlab& t, bool count_waste);
  /// False when the TLAB's bound budget refuses the region charge.
  bool acquire_region_locked(Tlab& t, std::size_t total);

  // -- collection internals (mu_ held, world stopped) --
  void drain_worklist_serial(bool minor);
  std::size_t scan_cards_locked();  // minor: returns dirty cards scanned
  SegmentMeta* take_dirty_segments();  // pops the whole barrier dirty list
  void sweep_minor_locked(std::size_t& freed, std::size_t& swept,
                          std::size_t& promoted);
  void sweep_major_locked(std::size_t& freed, std::size_t& swept,
                          std::size_t& promoted);
  void sweep_large_locked(bool minor, std::size_t& freed, std::size_t& swept,
                          std::size_t& promoted);
  void sweep_segment(Segment& seg, SegmentSweep& out);
  void drain_unswept_locked();
  bool lazy_sweep_one_locked();

  // -- parallel GC worker pool --
  void parallel_mark(int workers);
  void parallel_sweep(int workers, std::vector<SegmentSweep>& results);
  void run_job(int workers, const std::function<void(int)>& fn);
  void worker_loop();

  Module* module_;
  std::function<void(GcKind)> gc_requester_;
  mutable std::mutex mu_;

  // Segment store. segments_ holds walkable segments (fully tiled with
  // object/filler headers outside live TLAB windows); pool_ holds empty
  // segments awaiting reuse.
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Segment>> pool_;
  std::vector<FreeRun> free_runs_;  // dead runs inside live segments,
                                    // rebuilt by each major sweep
  std::vector<YoungWindow> young_windows_;  // regions handed out this cycle
  // Head of the intrusive list of segments the write barrier dirtied since
  // the last collection; every segment's meta points back here.
  std::atomic<SegmentMeta*> dirty_head_{nullptr};

  // Large-object list (blocks >= kLargeThreshold), swept individually.
  // Entries at index >= large_young_start_ were allocated this cycle (the
  // large nursery); minor sweeps touch only that tail.
  std::vector<ObjRef> large_;
  std::vector<std::size_t> large_sizes_;  // parallel to large_
  std::size_t large_young_start_ = 0;

  std::vector<Tlab*> tlabs_;  // registered mutator TLABs (+ shared_tlab_)
  Tlab shared_tlab_;          // serves tlab-less callers, used under mu_

  // GC-trigger protocol: the bump fast path never checks the budget; each
  // TLAB's byte count is folded into this atomic at refill points (under
  // mu_) and the refilling/large-allocating thread compares it against
  // threshold_ *before* acquiring new space, calling the requester with no
  // locks held. gc_perform resets it while the world is stopped. Atomic so
  // the unlocked compare is well-defined against the collector's reset.
  std::atomic<std::size_t> bytes_since_gc_{0};
  std::size_t threshold_;
  // Major trigger: a collection is promoted to Major once the old
  // generation alone exceeds this; rescaled after every major so major
  // frequency tracks heap growth (2x live), never dropping below 4x the
  // minor threshold.
  std::size_t major_threshold_;
  std::size_t old_bytes_ = 0;  // current old-generation live bytes

  // Authoritative at fold points; a major sweep recomputes live_* exactly
  // from the mark bits, a minor sweep decrements them by the dead it found.
  std::size_t live_bytes_ = 0;
  std::size_t live_objects_ = 0;
  HeapStats stats_{};

  // Member mark worklist, reused across collections and reserved to the
  // previous high-water mark (replaces the per-root stack the old
  // Heap::mark built).
  std::vector<ObjRef> worklist_;
  std::size_t worklist_hwm_ = 0;
  GcKind cur_kind_ = GcKind::Major;

  // Lazy sweep-on-refill (gated): segments whose sweep a major deferred.
  bool lazy_sweep_ = false;
  std::vector<Segment*> unswept_;

  // GC worker pool (lazy-spawned, parked between collections).
  int gc_threads_ = 1;
  std::vector<std::thread> gc_workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::function<void(int)> job_;
  std::uint64_t job_gen_ = 0;
  int job_slots_ = 0;  // unclaimed helper slots for the current job
  int job_done_ = 0;   // helpers finished with the current job
  bool shutdown_ = false;

  // Parallel mark: global chunk pool + idle-tracking termination.
  std::mutex mark_mu_;
  std::condition_variable mark_cv_;
  std::deque<std::vector<ObjRef>> mark_chunks_;
  int mark_active_ = 0;
  // Lock-free hint of mark_chunks_.size(); lets workers decide to donate
  // without taking mark_mu_ on every trace.
  std::atomic<int> mark_pool_size_{0};
};

/// String helpers.
std::string string_value(ObjRef s);

}  // namespace hpcnet::vm

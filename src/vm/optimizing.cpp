// Tier::Optimizing — the CLR 1.1 / IBM JVM class engine. Methods are
// compiled (by the TieredEngine, into the profile's CodeCache) to the
// three-address register IR in regir.hpp and executed by a dense dispatch
// loop over a flat register file: no operand stack, no tag checks, safepoint
// polls only on taken backward branches.
#include <algorithm>

#include "vm/arith.hpp"
#include "vm/engines.hpp"
#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/intrinsics.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/regir.hpp"
#include "vm/unwind.hpp"
#include "vm/veckernels.hpp"

namespace hpcnet::vm {

namespace {

using regir::RCode;
using regir::RInstr;
using regir::ROp;

constexpr std::uint8_t kTierIndex = static_cast<std::uint8_t>(Tier::Optimizing);

constexpr std::int64_t kRegFieldBits = 20;
constexpr std::int64_t kRegFieldMask = (1 << kRegFieldBits) - 1;

struct OptFrame {
  GcFrame gc;  // must be first
  const RCode* rc = nullptr;
  Slot* regs = nullptr;

  static void enumerate(const GcFrame* g, void (*visit)(ObjRef, void*),
                        void* arg) {
    const auto* f = reinterpret_cast<const OptFrame*>(g);
    for (std::int32_t r : f->rc->ref_regs) {
      if (f->regs[r].ref != nullptr) visit(f->regs[r].ref, arg);
    }
  }
};

/// Deliberately out-of-line rank-2 helpers: the "generic" multidimensional
/// array path of the JVM-like profiles goes through a call, mirroring how
/// Java's reflective multiarray access compares with the CLR's direct
/// row-major indexing (paper Graph 12).
[[gnu::noinline]] bool generic_mat_index(ObjRef mat, std::int32_t r,
                                         std::int32_t c, std::int64_t* out) {
  if (mat == nullptr || mat->kind != ObjKind::Matrix2) return false;
  if (r < 0 || r >= mat->length || c < 0 || c >= mat->cols) return false;
  *out = static_cast<std::int64_t>(r) * mat->cols + c;
  return true;
}

class OptimizingBackend final : public OptBackend {
 public:
  OptimizingBackend(VirtualMachine& vm, TieredEngine& engine)
      : vm_(vm), engine_(engine) {}

  // Compilation (and the per-method latching around it) lives in the
  // TieredEngine + CodeCache; this backend only executes published bodies.
  Slot run_compiled(VMContext& ctx, const RCode& rc,
                    const Slot* args) override {
    return run(ctx, rc, args);
  }

  Slot execute(VMContext& ctx, const MethodDef& m,
               const Slot* args) override {
    // Only reachable in Single mode, where opt_code_for_call compiles on
    // demand and never returns null (tiered dispatch uses run_compiled).
    return run(ctx, *engine_.opt_code_for_call(m.id), args);
  }

 private:
  Slot run(VMContext& ctx, const RCode& rc, const Slot* args);

  VirtualMachine& vm_;
  TieredEngine& engine_;
};

#define OPT_THROW(cls, msg)                 \
  do {                                      \
    vm_.throw_exception(ctx, (cls), (msg)); \
    goto dispatch_exception;                \
  } while (0)

Slot OptimizingBackend::run(VMContext& ctx, const RCode& rc,
                            const Slot* args) {
  Module& mod = vm_.module();
  const MethodDef& m = *rc.method;
  // Fuel check at the call boundary (see interpreter.cpp for rationale).
  // Also guards OSR continuations: osr_enter lands here too.
  if (ctx.fuel.exhausted()) {
    vm_.throw_exception(ctx, mod.fuel_exhausted_class(),
                        "fuel budget exhausted");
    return Slot{};
  }
  if (ctx.fuel.past_deadline()) {
    vm_.throw_exception(ctx, mod.deadline_exceeded_class(),
                        "wall-clock deadline exceeded");
    return Slot{};
  }
  telemetry::record_invocation(m.id, 0, kTierIndex);
  const auto arena_mark = ctx.arena.mark();

  OptFrame frame;
  frame.rc = &rc;
  frame.regs = static_cast<Slot*>(
      ctx.arena.alloc(static_cast<std::size_t>(rc.num_regs) * sizeof(Slot)));
  for (std::size_t i = 0; i < m.num_args(); ++i) frame.regs[i] = args[i];
  frame.gc.parent = ctx.top_frame;
  frame.gc.enumerate = &OptFrame::enumerate;
  ctx.top_frame = &frame.gc;

  Slot* R = frame.regs;
  UnwindMachine uw;
  std::int32_t pc = 0;
  Slot result;

  // Deopt arming: snapshot the method's deopt generation at frame entry.
  // request_deopt bumps it, and the next taken back edge notices and bails
  // out through the side table. Single mode and bodies without a side table
  // keep dent null — the check below stays a single null test off the cold
  // path of a taken branch.
  CodeCache::Entry* dent = nullptr;
  std::uint32_t dgen = 0;
  if (engine_.tiered() && !rc.deopt_points.empty()) {
    dent = &engine_.code_entry(m.id);
    dgen = dent->deopt_generation.load(std::memory_order_relaxed);
  }

  // Fuel windows: this tier has no OSR counter to piggyback on, so metering
  // costs one extra predictable branch per taken back edge (the satellite-2
  // single-compare constraint binds the interpreter, not this tier).
  const bool fuel_on = ctx.fuel.active;
  std::uint32_t backedges = 0;
  std::uint32_t fuel_charged = 0;
  std::uint32_t pulse_next = fuel_on ? kFuelPulseBackedges : 0;

  auto leave_frame = [&] {
    if (fuel_on && backedges != fuel_charged) {
      ctx.fuel.charge(backedges - fuel_charged);
      fuel_charged = backedges;
    }
    ctx.top_frame = frame.gc.parent;
    ctx.arena.release(arena_mark);
  };
  // Returns true when the frame must deoptimize: the branch was a taken back
  // edge (a safepoint, hence also a deopt point) and the generation moved.
  // `pc` then still indexes the branch, which is how deopt_bailout finds the
  // side-table record. Deopt waits for an idle unwind machine — a finally
  // running on behalf of a leave/throw holds state only this frame knows.
  auto take_branch = [&](std::int32_t target) -> bool {
    if (target <= pc) {
      vm_.safepoint_poll(ctx);  // back-edge poll
      if (fuel_on && ++backedges == pulse_next) {
        pulse_next += kFuelPulseBackedges;
        ctx.fuel.charge(backedges - fuel_charged);
        fuel_charged = backedges;
        if (ctx.fuel.exhausted()) {
          // Leave pc at the branch so the deopt side table (and the
          // unwinder's il_pc mapping) still index a real safepoint; the
          // caller's bailout path sees the pending exception and dispatches.
          vm_.throw_exception(ctx, mod.fuel_exhausted_class(),
                              "fuel budget exhausted");
          return true;
        }
        // Wall-clock deadline poll at the same pulse; same pc contract as
        // the fuel kill above (DESIGN.md §14).
        if (ctx.fuel.past_deadline()) {
          vm_.throw_exception(ctx, mod.deadline_exceeded_class(),
                              "wall-clock deadline exceeded");
          return true;
        }
      }
      if (dent != nullptr && uw.idle() &&
          dent->deopt_generation.load(std::memory_order_relaxed) != dgen) {
        return true;
      }
    }
    pc = target;
    return false;
  };

  for (;;) {
    const RInstr& in = rc.code[static_cast<std::size_t>(pc)];
    switch (in.op) {
      case ROp::NOP_R:
      case ROp::SAFEPOINT:
        break;
      case ROp::CARDMARK:
        // Null guard: the preceding store threw before this point if the
        // object was null, but CSE may have sunk the mark past a re-entry.
        if (R[in.a].ref != nullptr) gc_write_barrier(R[in.a].ref);
        break;
      case ROp::MOV:
      case ROp::MEMLD:
      case ROp::MEMST:
        R[in.d] = R[in.a];
        break;
      case ROp::LDI:
        R[in.d].raw = static_cast<std::uint64_t>(in.imm.i64);
        break;
      case ROp::LDSTR_R: {
        ObjRef s = vm_.heap().alloc_string(mod.string_at(in.a), &ctx.tlab);
        if (s == nullptr) {
          OPT_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        R[in.d] = Slot::from_ref(s);
        break;
      }

      case ROp::ADD_I4: R[in.d].i32 = arith::add_i32(R[in.a].i32, R[in.b].i32); break;
      case ROp::SUB_I4: R[in.d].i32 = arith::sub_i32(R[in.a].i32, R[in.b].i32); break;
      case ROp::MUL_I4: R[in.d].i32 = arith::mul_i32(R[in.a].i32, R[in.b].i32); break;
      case ROp::NEG_I4: R[in.d].i32 = arith::sub_i32(0, R[in.a].i32); break;
      case ROp::ADD_I8: R[in.d].i64 = arith::add_i64(R[in.a].i64, R[in.b].i64); break;
      case ROp::SUB_I8: R[in.d].i64 = arith::sub_i64(R[in.a].i64, R[in.b].i64); break;
      case ROp::MUL_I8: R[in.d].i64 = arith::mul_i64(R[in.a].i64, R[in.b].i64); break;
      case ROp::NEG_I8: R[in.d].i64 = arith::sub_i64(0, R[in.a].i64); break;
      case ROp::ADD_R4: R[in.d].f32 = R[in.a].f32 + R[in.b].f32; break;
      case ROp::SUB_R4: R[in.d].f32 = R[in.a].f32 - R[in.b].f32; break;
      case ROp::MUL_R4: R[in.d].f32 = R[in.a].f32 * R[in.b].f32; break;
      case ROp::DIV_R4: R[in.d].f32 = R[in.a].f32 / R[in.b].f32; break;
      case ROp::REM_R4: R[in.d].f32 = std::fmod(R[in.a].f32, R[in.b].f32); break;
      case ROp::NEG_R4: R[in.d].f32 = -R[in.a].f32; break;
      case ROp::ADD_R8: R[in.d].f64 = R[in.a].f64 + R[in.b].f64; break;
      case ROp::SUB_R8: R[in.d].f64 = R[in.a].f64 - R[in.b].f64; break;
      case ROp::MUL_R8: R[in.d].f64 = R[in.a].f64 * R[in.b].f64; break;
      case ROp::DIV_R8: R[in.d].f64 = R[in.a].f64 / R[in.b].f64; break;
      case ROp::REM_R8: R[in.d].f64 = std::fmod(R[in.a].f64, R[in.b].f64); break;
      case ROp::NEG_R8: R[in.d].f64 = -R[in.a].f64; break;

      case ROp::DIV_I4: {
        std::int32_t out;
        const auto s = arith::div_i32(R[in.a].i32, R[in.b].i32, &out);
        if (s == arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        if (s == arith::DivStatus::Overflow) {
          OPT_THROW(mod.arithmetic_class(), "integer overflow in division");
        }
        R[in.d].i32 = out;
        break;
      }
      case ROp::REM_I4: {
        std::int32_t out;
        if (arith::rem_i32(R[in.a].i32, R[in.b].i32, &out) ==
            arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        R[in.d].i32 = out;
        break;
      }
      case ROp::DIV_I8: {
        std::int64_t out;
        const auto s = arith::div_i64(R[in.a].i64, R[in.b].i64, &out);
        if (s == arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        if (s == arith::DivStatus::Overflow) {
          OPT_THROW(mod.arithmetic_class(), "integer overflow in division");
        }
        R[in.d].i64 = out;
        break;
      }
      case ROp::REM_I8: {
        std::int64_t out;
        if (arith::rem_i64(R[in.a].i64, R[in.b].i64, &out) ==
            arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        R[in.d].i64 = out;
        break;
      }

      case ROp::ADDI_I4:
        R[in.d].i32 = arith::add_i32(R[in.a].i32, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::SUBI_I4:
        R[in.d].i32 = arith::sub_i32(R[in.a].i32, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::MULI_I4:
        R[in.d].i32 = arith::mul_i32(R[in.a].i32, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::DIVI_I4: {
        std::int32_t out;
        const auto s = arith::div_i32(R[in.a].i32,
                                      static_cast<std::int32_t>(in.imm.i64), &out);
        if (s == arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        if (s == arith::DivStatus::Overflow) {
          OPT_THROW(mod.arithmetic_class(), "integer overflow in division");
        }
        R[in.d].i32 = out;
        break;
      }
      case ROp::REMI_I4: {
        std::int32_t out;
        if (arith::rem_i32(R[in.a].i32, static_cast<std::int32_t>(in.imm.i64),
                           &out) == arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        R[in.d].i32 = out;
        break;
      }
      case ROp::ADDI_I8:
        R[in.d].i64 = arith::add_i64(R[in.a].i64, in.imm.i64);
        break;
      case ROp::SUBI_I8:
        R[in.d].i64 = arith::sub_i64(R[in.a].i64, in.imm.i64);
        break;
      case ROp::MULI_I8:
        R[in.d].i64 = arith::mul_i64(R[in.a].i64, in.imm.i64);
        break;
      case ROp::DIVI_I8: {
        std::int64_t out;
        const auto s = arith::div_i64(R[in.a].i64, in.imm.i64, &out);
        if (s == arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        if (s == arith::DivStatus::Overflow) {
          OPT_THROW(mod.arithmetic_class(), "integer overflow in division");
        }
        R[in.d].i64 = out;
        break;
      }
      case ROp::REMI_I8: {
        std::int64_t out;
        if (arith::rem_i64(R[in.a].i64, in.imm.i64, &out) ==
            arith::DivStatus::DivideByZero) {
          OPT_THROW(mod.divide_by_zero_class(), "division by zero");
        }
        R[in.d].i64 = out;
        break;
      }
      case ROp::ADDI_R8: {
        Slot c;
        c.raw = static_cast<std::uint64_t>(in.imm.i64);
        R[in.d].f64 = R[in.a].f64 + c.f64;
        break;
      }
      case ROp::MULI_R8: {
        Slot c;
        c.raw = static_cast<std::uint64_t>(in.imm.i64);
        R[in.d].f64 = R[in.a].f64 * c.f64;
        break;
      }

      case ROp::AND_I4: R[in.d].i32 = R[in.a].i32 & R[in.b].i32; break;
      case ROp::OR_I4: R[in.d].i32 = R[in.a].i32 | R[in.b].i32; break;
      case ROp::XOR_I4: R[in.d].i32 = R[in.a].i32 ^ R[in.b].i32; break;
      case ROp::NOT_I4: R[in.d].i32 = ~R[in.a].i32; break;
      case ROp::SHL_I4: R[in.d].i32 = arith::shl_i32(R[in.a].i32, R[in.b].i32); break;
      case ROp::SHR_I4: R[in.d].i32 = arith::shr_i32(R[in.a].i32, R[in.b].i32); break;
      case ROp::SHRU_I4: R[in.d].i32 = arith::shru_i32(R[in.a].i32, R[in.b].i32); break;
      case ROp::AND_I8: R[in.d].i64 = R[in.a].i64 & R[in.b].i64; break;
      case ROp::OR_I8: R[in.d].i64 = R[in.a].i64 | R[in.b].i64; break;
      case ROp::XOR_I8: R[in.d].i64 = R[in.a].i64 ^ R[in.b].i64; break;
      case ROp::NOT_I8: R[in.d].i64 = ~R[in.a].i64; break;
      case ROp::SHL_I8: R[in.d].i64 = arith::shl_i64(R[in.a].i64, R[in.b].i32); break;
      case ROp::SHR_I8: R[in.d].i64 = arith::shr_i64(R[in.a].i64, R[in.b].i32); break;
      case ROp::SHRU_I8: R[in.d].i64 = arith::shru_i64(R[in.a].i64, R[in.b].i32); break;
      case ROp::SHLI_I4:
        R[in.d].i32 = arith::shl_i32(R[in.a].i32, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::SHRI_I4:
        R[in.d].i32 = arith::shr_i32(R[in.a].i32, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::SHLI_I8:
        R[in.d].i64 = arith::shl_i64(R[in.a].i64, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::SHRI_I8:
        R[in.d].i64 = arith::shr_i64(R[in.a].i64, static_cast<std::int32_t>(in.imm.i64));
        break;
      case ROp::ANDI_I4:
        R[in.d].i32 = R[in.a].i32 & static_cast<std::int32_t>(in.imm.i64);
        break;

      case ROp::CEQ_I4: R[in.d] = Slot::from_i32(R[in.a].i32 == R[in.b].i32); break;
      case ROp::CGT_I4: R[in.d] = Slot::from_i32(R[in.a].i32 > R[in.b].i32); break;
      case ROp::CLT_I4: R[in.d] = Slot::from_i32(R[in.a].i32 < R[in.b].i32); break;
      case ROp::CEQ_I8: R[in.d] = Slot::from_i32(R[in.a].i64 == R[in.b].i64); break;
      case ROp::CGT_I8: R[in.d] = Slot::from_i32(R[in.a].i64 > R[in.b].i64); break;
      case ROp::CLT_I8: R[in.d] = Slot::from_i32(R[in.a].i64 < R[in.b].i64); break;
      case ROp::CEQ_R4: R[in.d] = Slot::from_i32(R[in.a].f32 == R[in.b].f32); break;
      case ROp::CGT_R4: R[in.d] = Slot::from_i32(R[in.a].f32 > R[in.b].f32); break;
      case ROp::CLT_R4: R[in.d] = Slot::from_i32(R[in.a].f32 < R[in.b].f32); break;
      case ROp::CEQ_R8: R[in.d] = Slot::from_i32(R[in.a].f64 == R[in.b].f64); break;
      case ROp::CGT_R8: R[in.d] = Slot::from_i32(R[in.a].f64 > R[in.b].f64); break;
      case ROp::CLT_R8: R[in.d] = Slot::from_i32(R[in.a].f64 < R[in.b].f64); break;
      case ROp::CEQ_REF: R[in.d] = Slot::from_i32(R[in.a].ref == R[in.b].ref); break;

      case ROp::CV_I4_I8: R[in.d].i64 = R[in.a].i32; break;
      case ROp::CV_I4_R4: R[in.d] = Slot::from_f32(static_cast<float>(R[in.a].i32)); break;
      case ROp::CV_I4_R8: R[in.d].f64 = R[in.a].i32; break;
      case ROp::CV_I8_I4: R[in.d] = Slot::from_i32(static_cast<std::int32_t>(R[in.a].i64)); break;
      case ROp::CV_I8_R4: R[in.d] = Slot::from_f32(static_cast<float>(R[in.a].i64)); break;
      case ROp::CV_I8_R8: R[in.d].f64 = static_cast<double>(R[in.a].i64); break;
      case ROp::CV_R4_I4: R[in.d] = Slot::from_i32(arith::f_to_i32(R[in.a].f32)); break;
      case ROp::CV_R4_I8: R[in.d].i64 = arith::f_to_i64(R[in.a].f32); break;
      case ROp::CV_R4_R8: R[in.d].f64 = R[in.a].f32; break;
      case ROp::CV_R8_I4: R[in.d] = Slot::from_i32(arith::f_to_i32(R[in.a].f64)); break;
      case ROp::CV_R8_I8: R[in.d].i64 = arith::f_to_i64(R[in.a].f64); break;
      case ROp::CV_R8_R4: R[in.d] = Slot::from_f32(static_cast<float>(R[in.a].f64)); break;
      case ROp::SEXT8: R[in.d] = Slot::from_i32(static_cast<std::int8_t>(R[in.a].i32)); break;
      case ROp::ZEXT8: R[in.d] = Slot::from_i32(static_cast<std::uint8_t>(R[in.a].i32)); break;
      case ROp::SEXT16: R[in.d] = Slot::from_i32(static_cast<std::int16_t>(R[in.a].i32)); break;
      case ROp::ZEXT16: R[in.d] = Slot::from_i32(static_cast<std::uint16_t>(R[in.a].i32)); break;

      case ROp::JMP:
      case ROp::JMPB:
        if (take_branch(in.d)) goto deopt_bailout;
        continue;
      case ROp::JZ_I4: if (R[in.a].i32 == 0) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNZ_I4: if (R[in.a].i32 != 0) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JZ_I8: if (R[in.a].i64 == 0) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNZ_I8: if (R[in.a].i64 != 0) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JZ_REF: if (R[in.a].ref == nullptr) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNZ_REF: if (R[in.a].ref != nullptr) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;

      case ROp::JEQ_I4: if (R[in.a].i32 == R[in.b].i32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNE_I4: if (R[in.a].i32 != R[in.b].i32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLT_I4: if (R[in.a].i32 < R[in.b].i32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLE_I4: if (R[in.a].i32 <= R[in.b].i32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGT_I4: if (R[in.a].i32 > R[in.b].i32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGE_I4: if (R[in.a].i32 >= R[in.b].i32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JEQ_I8: if (R[in.a].i64 == R[in.b].i64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNE_I8: if (R[in.a].i64 != R[in.b].i64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLT_I8: if (R[in.a].i64 < R[in.b].i64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLE_I8: if (R[in.a].i64 <= R[in.b].i64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGT_I8: if (R[in.a].i64 > R[in.b].i64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGE_I8: if (R[in.a].i64 >= R[in.b].i64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JEQ_R4: if (R[in.a].f32 == R[in.b].f32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNE_R4: if (R[in.a].f32 != R[in.b].f32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLT_R4: if (R[in.a].f32 < R[in.b].f32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLE_R4: if (R[in.a].f32 <= R[in.b].f32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGT_R4: if (R[in.a].f32 > R[in.b].f32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGE_R4: if (R[in.a].f32 >= R[in.b].f32) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JEQ_R8: if (R[in.a].f64 == R[in.b].f64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNE_R8: if (R[in.a].f64 != R[in.b].f64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLT_R8: if (R[in.a].f64 < R[in.b].f64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLE_R8: if (R[in.a].f64 <= R[in.b].f64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGT_R8: if (R[in.a].f64 > R[in.b].f64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGE_R8: if (R[in.a].f64 >= R[in.b].f64) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JEQ_REF: if (R[in.a].ref == R[in.b].ref) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNE_REF: if (R[in.a].ref != R[in.b].ref) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;

      case ROp::JEQI_I4: if (R[in.a].i32 == static_cast<std::int32_t>(in.imm.i64)) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JNEI_I4: if (R[in.a].i32 != static_cast<std::int32_t>(in.imm.i64)) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLTI_I4: if (R[in.a].i32 < static_cast<std::int32_t>(in.imm.i64)) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JLEI_I4: if (R[in.a].i32 <= static_cast<std::int32_t>(in.imm.i64)) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGTI_I4: if (R[in.a].i32 > static_cast<std::int32_t>(in.imm.i64)) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;
      case ROp::JGEI_I4: if (R[in.a].i32 >= static_cast<std::int32_t>(in.imm.i64)) { if (take_branch(in.d)) goto deopt_bailout; continue; } break;

      case ROp::CALL_R: {
        vm_.safepoint_poll(ctx);
        const auto argc = static_cast<std::int32_t>(in.imm.i64);
        Slot argbuf[kMaxCallArgs];
        for (std::int32_t k = 0; k < argc; ++k) {
          argbuf[k] = R[rc.args_pool[static_cast<std::size_t>(in.b + k)]];
        }
        // Hot-to-hot fast path: a published body runs directly. A cold
        // callee (tiered mode only) routes back through the engine, which
        // counts the call and runs it on its current tier.
        const RCode* callee = engine_.opt_code_for_call(in.a);
        const Slot r = callee != nullptr ? run(ctx, *callee, argbuf)
                                         : engine_.call(ctx, in.a, argbuf);
        if (ctx.has_pending()) goto dispatch_exception;
        if (in.d >= 0) R[in.d] = r;
        break;
      }
      case ROp::CALLINTR_R: {
        const auto argc = static_cast<std::int32_t>(in.imm.i64);
        Slot argbuf[kMaxIntrinsicArgs];
        for (std::int32_t k = 0; k < argc; ++k) {
          argbuf[k] = R[rc.args_pool[static_cast<std::size_t>(in.b + k)]];
        }
        Slot r;
        intrinsic(in.a).fn(ctx, argbuf, &r);
        if (ctx.has_pending()) goto dispatch_exception;
        if (in.d >= 0) R[in.d] = r;
        break;
      }
      case ROp::MATH1_R8: {
        // imm is the vm::Intr id (position-independent); the table lookup is
        // a dense switch the branch predictor resolves per call site.
        R[in.d].f64 = regir::math1_fn(
            static_cast<std::int32_t>(in.imm.i64))(R[in.a].f64);
        break;
      }
      case ROp::MATH2_R8: {
        R[in.d].f64 = regir::math2_fn(static_cast<std::int32_t>(in.imm.i64))(
            R[in.a].f64, R[in.b].f64);
        break;
      }
      case ROp::ABS_I4_R: R[in.d] = Slot::from_i32(R[in.a].i32 < 0 ? -R[in.a].i32 : R[in.a].i32); break;
      case ROp::ABS_I8_R: R[in.d].i64 = R[in.a].i64 < 0 ? -R[in.a].i64 : R[in.a].i64; break;
      case ROp::ABS_R4_R: R[in.d] = Slot::from_f32(std::fabs(R[in.a].f32)); break;
      case ROp::ABS_R8_R: R[in.d].f64 = std::fabs(R[in.a].f64); break;
      case ROp::MAX_I4_R: R[in.d] = Slot::from_i32(std::max(R[in.a].i32, R[in.b].i32)); break;
      case ROp::MAX_I8_R: R[in.d].i64 = std::max(R[in.a].i64, R[in.b].i64); break;
      case ROp::MAX_R4_R: R[in.d] = Slot::from_f32(std::fmax(R[in.a].f32, R[in.b].f32)); break;
      case ROp::MAX_R8_R: R[in.d].f64 = std::fmax(R[in.a].f64, R[in.b].f64); break;
      case ROp::MIN_I4_R: R[in.d] = Slot::from_i32(std::min(R[in.a].i32, R[in.b].i32)); break;
      case ROp::MIN_I8_R: R[in.d].i64 = std::min(R[in.a].i64, R[in.b].i64); break;
      case ROp::MIN_R4_R: R[in.d] = Slot::from_f32(std::fmin(R[in.a].f32, R[in.b].f32)); break;
      case ROp::MIN_R8_R: R[in.d].f64 = std::fmin(R[in.a].f64, R[in.b].f64); break;

      case ROp::RET_R:
        if (in.a >= 0) result = R[in.a];
        leave_frame();
        return result;

      case ROp::NEWOBJ_R: {
        ObjRef obj = vm_.heap().alloc_instance(in.a, &ctx.tlab);
        if (obj == nullptr) {
          OPT_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        R[in.d] = Slot::from_ref(obj);
        break;
      }
      case ROp::LDFLD_R: {
        ObjRef obj = R[in.a].ref;
        if (obj == nullptr) OPT_THROW(mod.null_reference_class(), "ldfld");
        R[in.d] = obj->fields()[in.b];
        break;
      }
      case ROp::STFLD_R: {
        ObjRef obj = R[in.a].ref;
        if (obj == nullptr) OPT_THROW(mod.null_reference_class(), "stfld");
        obj->fields()[in.b] = R[in.d];
        break;
      }
      case ROp::LDSFLD_R:
        R[in.d] = mod.statics(in.a)[in.b];
        break;
      case ROp::STSFLD_R:
        mod.statics(in.a)[in.b] = R[in.d];
        break;

      case ROp::NEWARR_R: {
        const std::int32_t len = R[in.a].i32;
        if (len < 0) OPT_THROW(mod.index_range_class(), "negative array size");
        ObjRef arr =
            vm_.heap().alloc_array(static_cast<ValType>(in.b), len, &ctx.tlab);
        if (arr == nullptr) {
          OPT_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        R[in.d] = Slot::from_ref(arr);
        break;
      }
      case ROp::LDLEN_R: {
        ObjRef arr = R[in.a].ref;
        if (arr == nullptr) OPT_THROW(mod.null_reference_class(), "ldlen");
        R[in.d] = Slot::from_i32(arr->length);
        break;
      }
      case ROp::CHK_BOUNDS: {
        ObjRef arr = R[in.a].ref;
        if (arr == nullptr) OPT_THROW(mod.null_reference_class(), "ldelem");
        const std::int32_t idx = R[in.b].i32;
        if (idx < 0 || idx >= arr->length) {
          OPT_THROW(mod.index_range_class(), "index out of range");
        }
        break;
      }
      case ROp::JLT_LEN: {
        ObjRef arr = R[in.b].ref;
        if (arr == nullptr) OPT_THROW(mod.null_reference_class(), "ldlen");
        if (R[in.a].i32 < arr->length) {
          if (take_branch(in.d)) goto deopt_bailout;
          continue;
        }
        break;
      }

#define OPT_LDELEM(OPC, FIELD, FROM)                                      \
  case ROp::OPC: {                                                        \
    ObjRef arr = R[in.a].ref;                                             \
    if (arr == nullptr) OPT_THROW(mod.null_reference_class(), "ldelem");  \
    const std::int32_t idx = R[in.b].i32;                                 \
    if (idx < 0 || idx >= arr->length) {                                  \
      OPT_THROW(mod.index_range_class(), "index out of range");           \
    }                                                                     \
    R[in.d] = Slot::FROM(arr->FIELD()[idx]);                              \
    break;                                                                \
  }
      OPT_LDELEM(LDELEM_I4, i32_data, from_i32)
      OPT_LDELEM(LDELEM_I8, i64_data, from_i64)
      OPT_LDELEM(LDELEM_R4, f32_data, from_f32)
      OPT_LDELEM(LDELEM_R8, f64_data, from_f64)
      OPT_LDELEM(LDELEM_REF, ref_data, from_ref)
#undef OPT_LDELEM

#define OPT_LDELEMU(OPC, FIELD, FROM)               \
  case ROp::OPC:                                    \
    R[in.d] = Slot::FROM(R[in.a].ref->FIELD()[R[in.b].i32]); \
    break;
      OPT_LDELEMU(LDELEMU_I4, i32_data, from_i32)
      OPT_LDELEMU(LDELEMU_I8, i64_data, from_i64)
      OPT_LDELEMU(LDELEMU_R4, f32_data, from_f32)
      OPT_LDELEMU(LDELEMU_R8, f64_data, from_f64)
      OPT_LDELEMU(LDELEMU_REF, ref_data, from_ref)
#undef OPT_LDELEMU

#define OPT_STELEM(OPC, FIELD, MEMBER)                                    \
  case ROp::OPC: {                                                        \
    ObjRef arr = R[in.a].ref;                                             \
    if (arr == nullptr) OPT_THROW(mod.null_reference_class(), "stelem");  \
    const std::int32_t idx = R[in.b].i32;                                 \
    if (idx < 0 || idx >= arr->length) {                                  \
      OPT_THROW(mod.index_range_class(), "index out of range");           \
    }                                                                     \
    arr->FIELD()[idx] = R[in.d].MEMBER;                                   \
    break;                                                                \
  }
      OPT_STELEM(STELEM_I4, i32_data, i32)
      OPT_STELEM(STELEM_I8, i64_data, i64)
      OPT_STELEM(STELEM_R4, f32_data, f32)
      OPT_STELEM(STELEM_R8, f64_data, f64)
      OPT_STELEM(STELEM_REF, ref_data, ref)
#undef OPT_STELEM

#define OPT_STELEMU(OPC, FIELD, MEMBER)                 \
  case ROp::OPC:                                        \
    R[in.a].ref->FIELD()[R[in.b].i32] = R[in.d].MEMBER; \
    break;
      OPT_STELEMU(STELEMU_I4, i32_data, i32)
      OPT_STELEMU(STELEMU_I8, i64_data, i64)
      OPT_STELEMU(STELEMU_R4, f32_data, f32)
      OPT_STELEMU(STELEMU_R8, f64_data, f64)
      OPT_STELEMU(STELEMU_REF, ref_data, ref)
#undef OPT_STELEMU

      case ROp::NEWMAT_R: {
        const std::int32_t rows = R[in.a].i32;
        const std::int32_t cols = R[in.b].i32;
        if (rows < 0 || cols < 0) {
          OPT_THROW(mod.index_range_class(), "negative matrix size");
        }
        ObjRef mat = vm_.heap().alloc_matrix2(
            static_cast<ValType>(in.imm.i64), rows, cols, &ctx.tlab);
        if (mat == nullptr) {
          OPT_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        R[in.d] = Slot::from_ref(mat);
        break;
      }

#define OPT_LDEL2(OPC, FIELD, FROM)                                       \
  case ROp::OPC: {                                                        \
    ObjRef mat = R[in.a].ref;                                             \
    if (mat == nullptr) OPT_THROW(mod.null_reference_class(), "ldelem2"); \
    const std::int32_t r2 = R[in.b].i32;                                  \
    const std::int32_t c2 =                                               \
        R[static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask)].i32;     \
    if (r2 < 0 || r2 >= mat->length || c2 < 0 || c2 >= mat->cols) {       \
      OPT_THROW(mod.index_range_class(), "matrix index out of range");    \
    }                                                                     \
    R[in.d] = Slot::FROM(                                                 \
        mat->FIELD()[static_cast<std::int64_t>(r2) * mat->cols + c2]);    \
    break;                                                                \
  }
      OPT_LDEL2(LDEL2_I4, i32_data, from_i32)
      OPT_LDEL2(LDEL2_I8, i64_data, from_i64)
      OPT_LDEL2(LDEL2_R4, f32_data, from_f32)
      OPT_LDEL2(LDEL2_R8, f64_data, from_f64)
      OPT_LDEL2(LDEL2_REF, ref_data, from_ref)
#undef OPT_LDEL2

#define OPT_STEL2(OPC, FIELD, MEMBER)                                     \
  case ROp::OPC: {                                                        \
    ObjRef mat = R[in.a].ref;                                             \
    if (mat == nullptr) OPT_THROW(mod.null_reference_class(), "stelem2"); \
    const std::int32_t r2 = R[in.b].i32;                                  \
    const std::int32_t c2 =                                               \
        R[static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask)].i32;     \
    const std::int32_t v2 = static_cast<std::int32_t>(                    \
        (in.imm.i64 >> kRegFieldBits) & kRegFieldMask);                   \
    if (r2 < 0 || r2 >= mat->length || c2 < 0 || c2 >= mat->cols) {       \
      OPT_THROW(mod.index_range_class(), "matrix index out of range");    \
    }                                                                     \
    mat->FIELD()[static_cast<std::int64_t>(r2) * mat->cols + c2] =        \
        R[v2].MEMBER;                                                     \
    break;                                                                \
  }
      OPT_STEL2(STEL2_I4, i32_data, i32)
      OPT_STEL2(STEL2_I8, i64_data, i64)
      OPT_STEL2(STEL2_R4, f32_data, f32)
      OPT_STEL2(STEL2_R8, f64_data, f64)
      OPT_STEL2(STEL2_REF, ref_data, ref)
#undef OPT_STEL2

      case ROp::LDEL2_SLOW: {
        ObjRef mat = R[in.a].ref;
        const std::int32_t r2 = R[in.b].i32;
        const std::int32_t c2 =
            R[static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask)].i32;
        std::int64_t i;
        if (!generic_mat_index(mat, r2, c2, &i)) {
          if (mat == nullptr) OPT_THROW(mod.null_reference_class(), "ldelem2");
          OPT_THROW(mod.index_range_class(), "matrix index out of range");
        }
        switch (static_cast<ValType>((in.imm.i64 >> 40) & 0xF)) {
          case ValType::I32: R[in.d] = Slot::from_i32(mat->i32_data()[i]); break;
          case ValType::I64: R[in.d] = Slot::from_i64(mat->i64_data()[i]); break;
          case ValType::F32: R[in.d] = Slot::from_f32(mat->f32_data()[i]); break;
          case ValType::F64: R[in.d] = Slot::from_f64(mat->f64_data()[i]); break;
          default: R[in.d] = Slot::from_ref(mat->ref_data()[i]); break;
        }
        break;
      }
      case ROp::STEL2_SLOW: {
        ObjRef mat = R[in.a].ref;
        const std::int32_t r2 = R[in.b].i32;
        const std::int32_t c2 =
            R[static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask)].i32;
        const std::int32_t v2 = static_cast<std::int32_t>(
            (in.imm.i64 >> kRegFieldBits) & kRegFieldMask);
        std::int64_t i;
        if (!generic_mat_index(mat, r2, c2, &i)) {
          if (mat == nullptr) OPT_THROW(mod.null_reference_class(), "stelem2");
          OPT_THROW(mod.index_range_class(), "matrix index out of range");
        }
        switch (static_cast<ValType>((in.imm.i64 >> 40) & 0xF)) {
          case ValType::I32: mat->i32_data()[i] = R[v2].i32; break;
          case ValType::I64: mat->i64_data()[i] = R[v2].i64; break;
          case ValType::F32: mat->f32_data()[i] = R[v2].f32; break;
          case ValType::F64: mat->f64_data()[i] = R[v2].f64; break;
          default: mat->ref_data()[i] = R[v2].ref; break;
        }
        break;
      }
      case ROp::LDMROWS_R: {
        ObjRef mat = R[in.a].ref;
        if (mat == nullptr) OPT_THROW(mod.null_reference_class(), "ldmat");
        R[in.d] = Slot::from_i32(mat->length);
        break;
      }
      case ROp::LDMCOLS_R: {
        ObjRef mat = R[in.a].ref;
        if (mat == nullptr) OPT_THROW(mod.null_reference_class(), "ldmat");
        R[in.d] = Slot::from_i32(mat->cols);
        break;
      }

      case ROp::BOX_R: {
        ObjRef box =
            vm_.heap().alloc_box(static_cast<ValType>(in.b), R[in.a], &ctx.tlab);
        if (box == nullptr) {
          OPT_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        R[in.d] = Slot::from_ref(box);
        break;
      }
      case ROp::UNBOX_R: {
        ObjRef box = R[in.a].ref;
        if (box == nullptr) OPT_THROW(mod.null_reference_class(), "unbox");
        if (box->kind != ObjKind::Boxed ||
            box->elem != static_cast<ValType>(in.b)) {
          OPT_THROW(mod.invalid_cast_class(), "unbox type mismatch");
        }
        R[in.d] = box->fields()[0];
        break;
      }

      case ROp::THROW_R: {
        ObjRef exc = R[in.a].ref;
        if (exc == nullptr) OPT_THROW(mod.null_reference_class(), "throw null");
        ctx.pending_exception = exc;
        goto dispatch_exception;
      }
      case ROp::LEAVE_R: {
        const UnwindAction a =
            uw.on_leave(m, in.il_pc, in.a);  // a = IL target
        pc = rc.il2rpc[static_cast<std::size_t>(a.pc)];
        continue;
      }
      case ROp::ENDFINALLY_R: {
        const UnwindAction a = uw.on_endfinally(mod, m);
        switch (a.kind) {
          case UnwindAction::Kind::Resume:
          case UnwindAction::Kind::EnterFinally:
            pc = rc.il2rpc[static_cast<std::size_t>(a.pc)];
            continue;
          case UnwindAction::Kind::EnterCatch:
            R[rc.handler_exc_reg[static_cast<std::size_t>(a.handler_index)]] =
                Slot::from_ref(uw.exception());
            pc = rc.il2rpc[static_cast<std::size_t>(a.pc)];
            continue;
          case UnwindAction::Kind::Propagate:
            ctx.pending_exception = uw.exception();
            leave_frame();
            return result;
        }
        break;
      }

      case ROp::VECLOOP: {
        // Guarded vector fast path (DESIGN.md §12). If every span the kernel
        // touches is provably in-bounds for the whole trip range, run the
        // loop as one kernel call and leave the register state exactly as
        // the scalar loop would at exit (ivar = limit, acc = final value);
        // the scalar guard that follows then exits immediately. Any guard
        // failure breaks out with NO state change, falling through to the
        // retained scalar loop — which throws (or just runs) exactly as an
        // unvectorized build would.
        const RCode::VecLoop& v = rc.vec_loops[static_cast<std::size_t>(in.a)];
        const std::int32_t start = R[v.ivar].i32;
        std::int32_t limit;
        if (v.limit >= 0) {
          limit = R[v.limit].i32;
        } else {
          ObjRef larr = R[v.limit_arr].ref;
          if (larr == nullptr) break;  // scalar loop throws the NRE
          limit = larr->length;
        }
        if (start >= limit) break;  // zero-trip: nothing to do, touch nothing
        ObjRef a0 = v.arr0 >= 0 ? R[v.arr0].ref : nullptr;
        ObjRef a1 = v.arr1 >= 0 ? R[v.arr1].ref : nullptr;
        ObjRef a2 = v.arr2 >= 0 ? R[v.arr2].ref : nullptr;
        if ((v.arr0 >= 0 && a0 == nullptr) || (v.arr1 >= 0 && a1 == nullptr) ||
            (v.arr2 >= 0 && a2 == nullptr) || start < 0) {
          break;
        }
        bool ok = false;
        switch (v.kernel) {
          case veckernels::kMapScaleF64:
          case veckernels::kMapScaleI4:
          case veckernels::kSumF64:
          case veckernels::kSumI4:
            ok = limit <= a0->length;
            break;
          case veckernels::kMapAddF64:
          case veckernels::kMapAddI4:
          case veckernels::kDaxpyF64:
          case veckernels::kDaxpyI4:
          case veckernels::kDotF64:
          case veckernels::kDotI4:
            ok = limit <= a0->length && limit <= a1->length;
            break;
          case veckernels::kGatherDotF64:
            // arr0 (x) is indexed through arr1's data-dependent values; the
            // kernel checks those per element and abandons on a violation.
            ok = limit <= a1->length && limit <= a2->length;
            break;
          case veckernels::kSor5F64:
            ok = start >= 1 && limit <= a0->length - 1 &&
                 limit <= a1->length && limit <= a2->length;
            break;
          default:
            break;
        }
        if (!ok) break;

        // Fuel: charge exactly what the scalar loop's in-loop pulses would
        // have charged by its LAST pulse (not the residual past it — that
        // stays in `backedges` for the frame's next pulse or exit charge, so
        // call-boundary exhaustion checks downstream see identical state).
        // If that charge would exhaust the budget, decline vectorization:
        // the scalar loop then kills the job at precisely the right pulse.
        const std::int64_t trips =
            static_cast<std::int64_t>(limit) - static_cast<std::int64_t>(start);
        const std::uint32_t save_backedges = backedges;
        const std::uint32_t save_charged = fuel_charged;
        const std::uint32_t save_pulse = pulse_next;
        std::uint64_t bulk = 0;
        if (fuel_on) {
          const std::uint64_t after = static_cast<std::uint64_t>(backedges) +
                                      static_cast<std::uint64_t>(trips);
          if (after >= pulse_next) {
            const std::uint64_t last_pulse =
                after - (after % kFuelPulseBackedges);
            bulk = last_pulse - fuel_charged;
            if (ctx.fuel.remaining <= static_cast<std::int64_t>(bulk)) break;
            ctx.fuel.charge(bulk);
            fuel_charged = static_cast<std::uint32_t>(last_pulse);
            pulse_next =
                static_cast<std::uint32_t>(last_pulse) + kFuelPulseBackedges;
          }
          backedges = static_cast<std::uint32_t>(after);
        }

        Slot s0v, s1v;
        if (v.s0_reg >= 0) {
          s0v = R[v.s0_reg];
        } else {
          s0v.raw = static_cast<std::uint64_t>(v.s0_bits);
        }
        if (v.s1_reg >= 0) {
          s1v = R[v.s1_reg];
        } else {
          s1v.raw = static_cast<std::uint64_t>(v.s1_bits);
        }

        bool ran = true;
        switch (v.kernel) {
          case veckernels::kMapScaleF64:
            veckernels::map_scale_f64(a0->f64_data(), start, limit, s0v.f64);
            break;
          case veckernels::kMapAddF64:
            veckernels::map_add_f64(a0->f64_data(), a1->f64_data(), start,
                                    limit);
            break;
          case veckernels::kDaxpyF64:
            veckernels::daxpy_f64(a0->f64_data(), a1->f64_data(), start,
                                  limit, s0v.f64);
            break;
          case veckernels::kSumF64:
            R[v.acc] = Slot::from_f64(
                veckernels::sum_f64(a0->f64_data(), start, limit,
                                    R[v.acc].f64));
            break;
          case veckernels::kDotF64:
            R[v.acc] = Slot::from_f64(
                veckernels::dot_f64(a0->f64_data(), a1->f64_data(), start,
                                    limit, R[v.acc].f64));
            break;
          case veckernels::kGatherDotF64: {
            double out = 0;
            if (veckernels::gather_dot_f64(a0->f64_data(), a0->length,
                                           a1->i32_data(), a2->f64_data(),
                                           start, limit, R[v.acc].f64,
                                           &out)) {
              R[v.acc] = Slot::from_f64(out);
            } else {
              // Data-dependent gather index out of range: roll the fuel
              // state back and let the scalar loop re-run — it meters itself
              // pulse by pulse and throws at exactly the offending element.
              backedges = save_backedges;
              fuel_charged = save_charged;
              pulse_next = save_pulse;
              ctx.fuel.spent -= bulk;
              ctx.fuel.remaining += static_cast<std::int64_t>(bulk);
              ran = false;
            }
            break;
          }
          case veckernels::kSor5F64:
            veckernels::sor5_f64(a0->f64_data(), a1->f64_data(),
                                 a2->f64_data(), start, limit, s0v.f64,
                                 s1v.f64);
            break;
          case veckernels::kMapScaleI4:
            veckernels::map_scale_i32(a0->i32_data(), start, limit, s0v.i32);
            break;
          case veckernels::kMapAddI4:
            veckernels::map_add_i32(a0->i32_data(), a1->i32_data(), start,
                                    limit);
            break;
          case veckernels::kDaxpyI4:
            veckernels::daxpy_i32(a0->i32_data(), a1->i32_data(), start,
                                  limit, s0v.i32);
            break;
          case veckernels::kSumI4:
            R[v.acc] = Slot::from_i32(
                veckernels::sum_i32(a0->i32_data(), start, limit,
                                    R[v.acc].i32));
            break;
          case veckernels::kDotI4:
            R[v.acc] = Slot::from_i32(
                veckernels::dot_i32(a0->i32_data(), a1->i32_data(), start,
                                    limit, R[v.acc].i32));
            break;
          default:
            ran = false;
            break;
        }
        if (!ran) break;

        // The whole loop ran: hand off to the scalar guard in exit position.
        // One safepoint poll stands in for the per-back-edge polls (there is
        // never a poll, allocation or call inside a lowered loop body).
        R[v.ivar] = Slot::from_i32(limit);
        telemetry::record_vec_loop(veckernels::kernel_name(v.kernel),
                                   static_cast<std::uint64_t>(trips));
        vm_.safepoint_poll(ctx);
        break;
      }

      case ROp::COUNT_:
        break;
    }
    ++pc;
    continue;

  deopt_bailout: {
    // A pending FuelExhausted raised at the back-edge safepoint unwinds like
    // any managed exception; only real deopt requests fall through below.
    if (ctx.has_pending()) goto dispatch_exception;
    // The invocation finishes in an interpreter continuation built from the
    // side-table record at this branch; its result IS this frame's result.
    result = engine_.deopt_bailout(ctx, rc, pc, R);
    leave_frame();
    return result;
  }

  dispatch_exception: {
    ObjRef exc = ctx.pending_exception;
    ctx.pending_exception = nullptr;
    const std::int32_t il =
        rc.code[static_cast<std::size_t>(pc)].il_pc;
    const UnwindAction a = uw.on_throw(mod, m, il, exc);
    switch (a.kind) {
      case UnwindAction::Kind::EnterCatch:
        R[rc.handler_exc_reg[static_cast<std::size_t>(a.handler_index)]] =
            Slot::from_ref(uw.exception());
        pc = rc.il2rpc[static_cast<std::size_t>(a.pc)];
        continue;
      case UnwindAction::Kind::EnterFinally:
        pc = rc.il2rpc[static_cast<std::size_t>(a.pc)];
        continue;
      default:
        ctx.pending_exception = exc;
        leave_frame();
        return result;
    }
  }
  }
}

#undef OPT_THROW

}  // namespace

std::unique_ptr<OptBackend> make_optimizing_backend(VirtualMachine& vm,
                                                    TieredEngine& engine) {
  return std::make_unique<OptimizingBackend>(vm, engine);
}

}  // namespace hpcnet::vm

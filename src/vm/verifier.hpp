// CIL verification: abstract interpretation of the operand stack over all
// reachable paths. The CLI requires code to be verifiably type-safe before a
// conforming engine runs it; beyond safety, this pass is what lets the
// Baseline and Optimizing tiers drop all runtime type dispatch:
//
//  * fills Instr::type on every polymorphic opcode (add, conv, ldloc, ...),
//  * resolves and checks branch targets and handler regions,
//  * computes max_stack and the per-pc stack type maps that serve as precise
//    GC root maps and drive the stack-to-register translation.
#pragma once

#include <stdexcept>
#include <string>

#include "vm/module.hpp"

namespace hpcnet::vm {

class VerifyError : public std::runtime_error {
 public:
  VerifyError(const std::string& method, std::int32_t pc,
              const std::string& what)
      : std::runtime_error(method + " @" + std::to_string(pc) + ": " + what),
        pc_(pc) {}
  std::int32_t pc() const { return pc_; }

 private:
  std::int32_t pc_;
};

/// Verifies one method in place; throws VerifyError on invalid IL.
/// Idempotent: re-verifying a verified method is a no-op.
void verify(Module& module, std::int32_t method_id);

/// Verifies every method in the module.
void verify_all(Module& module);

/// Verifies a detached method body against `module` (the body need not be —
/// and typically is not — registered in the module's method table). Used by
/// the inliner on its privately expanded copies; callers own synchronization
/// of `m`. Throws VerifyError on invalid IL.
void verify_body(Module& module, MethodDef& m);

}  // namespace hpcnet::vm

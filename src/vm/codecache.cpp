#include "vm/codecache.hpp"

#include <stdexcept>

#include "vm/regir.hpp"

namespace hpcnet::vm {

CodeCache::CodeCache() = default;

CodeCache::~CodeCache() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

CodeCache::Chunk* CodeCache::grow(std::size_t chunk_index) {
  if (chunk_index >= kMaxChunks) {
    throw std::length_error("CodeCache: method id out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Chunk* c = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (c == nullptr) {
    c = new Chunk();
    chunks_[chunk_index].store(c, std::memory_order_release);
  }
  return c;
}

const regir::RCode* CodeCache::adopt(
    std::shared_ptr<const regir::RCode> code) {
  const regir::RCode* raw = code.get();
  std::lock_guard<std::mutex> lock(mu_);
  owned_.emplace(raw, std::move(code));
  return raw;
}

std::shared_ptr<const regir::RCode> CodeCache::shared_code(
    const regir::RCode* code) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = owned_.find(code);
  return it != owned_.end() ? it->second : nullptr;
}

CodeCache::Entry& CodeCache::osr_entry(const void* body,
                                       std::int32_t header_pc) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Entry>& slot = osr_entries_[{body, header_pc}];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

}  // namespace hpcnet::vm

// The CIL-subset instruction set. ILBuilder emits these; the verifier
// type-checks them, resolves branch labels to instruction indices, and fills
// in Instr::type for polymorphic opcodes (ADD works on any numeric type, just
// as CIL `add` does — the verifier records which one each occurrence uses, so
// the compiled tiers can dispatch statically).
#pragma once

#include <cstdint>
#include <string>

#include "vm/value.hpp"

namespace hpcnet::vm {

/// Call arity ceilings. The execution tiers marshal call arguments through
/// fixed-size buffers of these sizes, so the verifier rejects any method or
/// intrinsic signature that exceeds them (a call site could otherwise
/// overflow the buffer at run time).
constexpr std::int32_t kMaxCallArgs = 16;
constexpr std::int32_t kMaxIntrinsicArgs = 8;

enum class Op : std::uint8_t {
  NOP = 0,

  // Constants.
  LDC_I4,   // imm.i64 (value fits in int32)
  LDC_I8,   // imm.i64
  LDC_R4,   // imm.f64 (exact float widened to double)
  LDC_R8,   // imm.f64
  LDNULL,
  LDSTR,    // a = string pool index

  // Locals and arguments. Arguments and locals live in one frame-local array
  // (args first), but the builder exposes them separately like CIL does.
  LDLOC,  // a = local index
  STLOC,
  LDARG,  // a = argument index
  STARG,

  // Stack manipulation.
  DUP,
  POP,

  // Arithmetic (polymorphic over I32/I64/F32/F64; verifier fills type).
  ADD,
  SUB,
  MUL,
  DIV,   // integer division truncates toward zero; throws on /0 and overflow
  REM,
  NEG,

  // Bitwise / shifts (I32/I64 only).
  AND,
  OR,
  XOR,
  NOT,
  SHL,
  SHR,     // arithmetic
  SHR_UN,  // logical

  // Comparisons (push int32 0/1).
  CEQ,
  CGT,
  CLT,

  // Branches; a = target label (instruction index after verification).
  BR,
  BRTRUE,
  BRFALSE,
  BEQ,
  BNE,
  BLT,
  BLE,
  BGT,
  BGE,

  // Conversions; type field records the *source* type.
  CONV_I4,
  CONV_I8,
  CONV_R4,
  CONV_R8,
  CONV_I1,  // sign-extend low 8 bits (result is I32 on the stack)
  CONV_U1,
  CONV_I2,
  CONV_U2,

  // Calls.
  CALL,       // a = method id
  CALLINTR,   // a = intrinsic id
  RET,

  // Objects.
  NEWOBJ,  // a = class id (no constructors; fields zero-initialized)
  LDFLD,   // a = field index within class; b = class id
  STFLD,
  LDSFLD,  // a = static field index; b = class id
  STSFLD,

  // One-dimensional (jagged-style) arrays; type = element type.
  NEWARR,  // pops length
  LDLEN,
  LDELEM,  // pops [arr, idx]
  STELEM,  // pops [arr, idx, value]

  // True rank-2 rectangular arrays (the CLI multidimensional array the paper
  // benchmarks against jagged arrays in Graph 12); type = element type.
  NEWMAT,    // pops [rows, cols]
  LDELEM2,   // pops [mat, r, c]
  STELEM2,   // pops [mat, r, c, value]
  LDMATROWS,
  LDMATCOLS,

  // Boxing of value types (Table 3's Boxing micro-benchmark).
  BOX,    // type = boxed value type
  UNBOX,

  // Exceptions.
  THROW,       // pops exception ref
  LEAVE,       // a = target; runs intervening finally handlers
  ENDFINALLY,

  COUNT_,
};

const char* to_string(Op op);

/// Decoded instruction. 24 bytes; `type` is None until the verifier runs.
struct Instr {
  Op op = Op::NOP;
  ValType type = ValType::None;
  std::int32_t a = 0;
  std::int32_t b = 0;
  union Imm {
    std::int64_t i64;
    double f64;
  } imm{};

  static Instr make(Op op, std::int32_t a = 0, std::int32_t b = 0) {
    Instr in;
    in.op = op;
    in.a = a;
    in.b = b;
    in.imm.i64 = 0;
    return in;
  }
};

/// Human-readable one-line rendering (used by the disassembler and tests).
std::string to_string(const Instr& in);

}  // namespace hpcnet::vm

// On-stack replacement continuations (DESIGN.md §10). An OSR continuation
// of method `m` at loop header `H` is a detached MethodDef that takes the
// whole live frame state as arguments — every frame slot of `m` (arguments
// then locals) followed by the operand stack entries at `H`, bottom-up —
// rebuilds the operand stack in a short prologue, and branches into a copy
// of `m`'s body at `H`. Running the continuation to completion IS finishing
// the original invocation: its return value (or propagated exception) is the
// original call's result.
//
// The same transform serves both directions of the tier transfer:
//   * OSR up:   compile the continuation with the register JIT and enter it
//               from a hot interpreter/baseline frame.
//   * deopt:    interpret the continuation, entered from a compiled frame
//               whose register file was mapped back through the deopt side
//               table (regir::RCode::deopt_points).
//
// Continuations are NEVER registered in the module's method table (adding
// methods would race the lock-free readers of the table); they share the
// original method's id so telemetry, verification latches and hotness all
// attribute to the real method. Callers own the shared_ptr's lifetime.
#pragma once

#include <cstdint>
#include <memory>

#include "vm/module.hpp"

namespace hpcnet::vm::osr {

/// Builds and verifies the continuation of `m` at loop header `header_pc`.
/// `m` must already be verified (the transform reads `stack_in`). Returns
/// nullptr if the continuation cannot be built or does not verify — the
/// caller then simply never OSRs this loop.
std::shared_ptr<const MethodDef> build_continuation(Module& module,
                                                    const MethodDef& m,
                                                    std::int32_t header_pc);

}  // namespace hpcnet::vm::osr

#include "vm/osr.hpp"

#include <string>
#include <utility>
#include <vector>

#include "vm/opcode.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm::osr {

namespace {

/// Ops whose `a` field is an instruction index (post-verification).
bool is_branch_target_op(Op op) {
  switch (op) {
    case Op::BR:
    case Op::BRTRUE:
    case Op::BRFALSE:
    case Op::BEQ:
    case Op::BNE:
    case Op::BLT:
    case Op::BLE:
    case Op::BGT:
    case Op::BGE:
    case Op::LEAVE:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::shared_ptr<const MethodDef> build_continuation(Module& module,
                                                    const MethodDef& m,
                                                    std::int32_t header_pc) {
  if (!m.verified || header_pc < 0 ||
      static_cast<std::size_t>(header_pc) >= m.code.size() ||
      !m.reachable[static_cast<std::size_t>(header_pc)]) {
    return nullptr;
  }
  const std::vector<ValType>& entry_stack =
      m.stack_in[static_cast<std::size_t>(header_pc)];
  const std::size_t nslots = m.frame_slots();
  const auto nargs = static_cast<std::int32_t>(m.num_args());
  // The prologue rebuilds the header's operand stack from the trailing
  // arguments, then jumps to the (shifted) header.
  const auto delta = static_cast<std::int32_t>(entry_stack.size()) + 1;

  auto c = std::make_shared<MethodDef>();
  c->name = m.name + "$osr@" + std::to_string(header_pc);
  c->id = m.id;  // telemetry/hotness/verification attribute to the original
  c->sig.ret = m.sig.ret;
  c->sig.params.reserve(nslots + entry_stack.size());
  for (std::size_t i = 0; i < nslots; ++i) {
    c->sig.params.push_back(m.slot_type(i));
  }
  for (ValType t : entry_stack) c->sig.params.push_back(t);
  // No locals: the original frame's locals arrive as arguments, so LDLOC j /
  // STLOC j rewrite to LDARG/STARG (nargs + j) below.

  c->code.reserve(m.code.size() + static_cast<std::size_t>(delta));
  for (std::size_t k = 0; k < entry_stack.size(); ++k) {
    c->code.push_back(Instr::make(
        Op::LDARG, static_cast<std::int32_t>(nslots + k)));
  }
  c->code.push_back(Instr::make(Op::BR, header_pc + delta));
  for (const Instr& src : m.code) {
    Instr in = src;
    switch (in.op) {
      case Op::LDLOC: in.op = Op::LDARG; in.a += nargs; break;
      case Op::STLOC: in.op = Op::STARG; in.a += nargs; break;
      default:
        if (is_branch_target_op(in.op)) in.a += delta;
        break;
    }
    c->code.push_back(in);
  }
  c->handlers = m.handlers;
  for (ExHandler& h : c->handlers) {
    h.try_begin += delta;
    h.try_end += delta;
    h.handler += delta;
  }

  try {
    verify_body(module, *c);
  } catch (const VerifyError&) {
    // A loop header the transform cannot express (the conservative out: the
    // frame just keeps running on its current tier).
    return nullptr;
  }
  return c;
}

}  // namespace hpcnet::vm::osr

// CIL disassembly and per-engine "machine code" dumps — the toolchain behind
// the paper's §5 JIT-quality study (Tables 5-8): the same benchmark loop is
// shown as CIL, as the Baseline tier executes it (literal stack traffic), and
// as each Optimizing profile compiles it (register IR after passes).
#pragma once

#include <string>

#include "vm/execution.hpp"
#include "vm/module.hpp"

namespace hpcnet::vm {

/// Disassembles a method's stack IL (one instruction per line, with labels).
std::string disassemble_cil(const Module& module, std::int32_t method_id);

/// Compiles the method under `profile` (must be an Optimizing profile) and
/// returns the register IR listing — what that "JIT" would execute.
std::string disassemble_compiled(VirtualMachine& vm, std::int32_t method_id,
                                 const EngineProfile& profile);

/// Instruction-count summary across tiers for the same method: how many
/// dispatched operations each engine executes per IL instruction (the
/// paper's "level of optimization of the emitted code" comparison).
struct CodeQuality {
  std::size_t cil_instructions = 0;
  std::size_t interp_dispatches = 0;    // == CIL, with dynamic tag checks
  std::size_t baseline_dispatches = 0;  // == CIL, type-specialized
  std::size_t optimized_instructions = 0;
};
CodeQuality code_quality(VirtualMachine& vm, std::int32_t method_id,
                         const EngineProfile& profile);

}  // namespace hpcnet::vm

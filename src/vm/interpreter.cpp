// Tier::Interp — the SSCLI/Rotor stand-in. Portable by construction: every
// stack slot carries a dynamic type tag, every opcode re-checks its operand
// tags, the operand stack lives in memory and every instruction polls the
// safepoint flag. This is the "generic portability layer, no optimization"
// design the paper measures at 5-10x below the optimizing engines.
#include <cstring>
#include <vector>

#include "vm/arith.hpp"
#include "vm/engines.hpp"
#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/intrinsics.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/unwind.hpp"

namespace hpcnet::vm {

namespace {

constexpr std::uint8_t kTierIndex = static_cast<std::uint8_t>(Tier::Interp);

// SSCLI funnels primitive operations through its portability layer rather
// than open-coding them; these out-of-line helpers model that call-per-
// operation design (and are the main reason this tier lands 4-10x behind
// the optimizing engines, as Rotor did).
struct InterpFrame;
[[gnu::noinline]] void push_portable(InterpFrame& f, ValType t, Slot v);
[[gnu::noinline]] TaggedSlot pop_portable(InterpFrame& f);

struct InterpFrame {
  GcFrame gc;  // must be first (enumerate casts back)
  const MethodDef* m = nullptr;
  TaggedSlot* slots = nullptr;  // args + locals
  TaggedSlot* stack = nullptr;
  std::int32_t sp = 0;

  static void enumerate(const GcFrame* g, void (*visit)(ObjRef, void*),
                        void* arg) {
    const auto* f = reinterpret_cast<const InterpFrame*>(g);
    const std::size_t nslots = f->m->frame_slots();
    for (std::size_t i = 0; i < nslots; ++i) {
      if (f->slots[i].tag == ValType::Ref && f->slots[i].v.ref != nullptr) {
        visit(f->slots[i].v.ref, arg);
      }
    }
    for (std::int32_t i = 0; i < f->sp; ++i) {
      if (f->stack[i].tag == ValType::Ref && f->stack[i].v.ref != nullptr) {
        visit(f->stack[i].v.ref, arg);
      }
    }
  }
};

void push_portable(InterpFrame& f, ValType t, Slot v) {
  f.stack[f.sp].tag = t;
  f.stack[f.sp].v = v;
  ++f.sp;
}

TaggedSlot pop_portable(InterpFrame& f) { return f.stack[--f.sp]; }

class InterpBackend final : public TierBackend {
 public:
  InterpBackend(VirtualMachine& vm, TieredEngine& engine)
      : vm_(vm), engine_(engine), tiered_(engine.tiered()) {}

  Slot execute(VMContext& ctx, const MethodDef& m,
               const Slot* args) override {
    return exec(ctx, m, args);
  }

 private:
  Slot exec(VMContext& ctx, const MethodDef& m, const Slot* args);

  VirtualMachine& vm_;
  TieredEngine& engine_;
  const bool tiered_;
};

#define INTERP_THROW(cls, msg)                \
  do {                                        \
    vm_.throw_exception(ctx, (cls), (msg));   \
    goto dispatch_exception;                  \
  } while (0)

Slot InterpBackend::exec(VMContext& ctx, const MethodDef& m,
                         const Slot* args) {
  Module& mod = vm_.module();
  engine_.ensure_verified(m);
  // Fuel check at the call boundary: a frame entered after the budget ran
  // dry (the caller charges residual fuel at its own frame exit) faults
  // immediately, so loop-free callees cannot extend a dead job for long.
  if (ctx.fuel.exhausted()) {
    vm_.throw_exception(ctx, mod.fuel_exhausted_class(),
                        "fuel budget exhausted");
    return Slot{};
  }
  if (ctx.fuel.past_deadline()) {
    vm_.throw_exception(ctx, mod.deadline_exceeded_class(),
                        "wall-clock deadline exceeded");
    return Slot{};
  }
  telemetry::InvocationScope tel(m.id, kTierIndex);
  const auto arena_mark = ctx.arena.mark();

  InterpFrame frame;
  frame.m = &m;
  const std::size_t nslots = m.frame_slots();
  frame.slots = static_cast<TaggedSlot*>(
      ctx.arena.alloc(nslots * sizeof(TaggedSlot)));
  frame.stack = static_cast<TaggedSlot*>(ctx.arena.alloc(
      static_cast<std::size_t>(m.max_stack + 1) * sizeof(TaggedSlot)));
  for (std::size_t i = 0; i < nslots; ++i) {
    frame.slots[i].tag = m.slot_type(i);
    if (i < m.num_args()) frame.slots[i].v = args[i];
  }
  frame.gc.parent = ctx.top_frame;
  frame.gc.enumerate = &InterpFrame::enumerate;
  ctx.top_frame = &frame.gc;

  UnwindMachine uw;
  TaggedSlot* st = frame.stack;
  std::int32_t pc = 0;
  Slot result;
  // Bytecode counter kept in a register-friendly local; flushed to the
  // telemetry scope only at frame exit so the dispatch loop pays nothing.
  std::uint64_t bc = 0;
  // Taken backward branches, flushed to the tiering policy at frame exit
  // (kept register-local for the same reason as bc).
  std::uint32_t backedges = 0;
  // Back edges already charged to ctx.fuel (== backedges at each pulse).
  std::uint32_t fuel_charged = 0;

  // Frame teardown is RAII so it runs on EVERY exit: normal returns,
  // managed exceptions propagating out, and native C++ exceptions (frame
  // arena exhaustion, a compile failure inside a nested call) unwinding
  // through the dispatch loop. Before this guard, a native unwind left
  // ctx.top_frame pointing at this dead frame (a GC crash waiting in the
  // caller's catch) and silently dropped the frame's back-edge credit.
  // Declared after `tel` so the bytecode count lands before tel's flush.
  struct FrameExit {
    InterpBackend* self;
    VMContext& ctx;
    InterpFrame& frame;
    telemetry::InvocationScope& tel;
    const MethodDef& m;
    FrameArena::Mark arena_mark;
    const std::uint64_t& bc;
    const std::uint32_t& backedges;
    const std::uint32_t& fuel_charged;
    bool tiered;
    ~FrameExit() {
      tel.bytecodes = bc;
      ctx.top_frame = frame.gc.parent;
      ctx.arena.release(arena_mark);
      // Residual fuel: back edges taken since the last pulse are charged at
      // frame exit (no kill check here — the next pulse or call boundary
      // catches an overdraw), so short loops in callees are still metered.
      if (ctx.fuel.active && backedges != fuel_charged) {
        ctx.fuel.charge(backedges - fuel_charged);
      }
      if (tiered && backedges != 0) {
        try {
          self->engine_.note_backedges(m.id, backedges);
        } catch (...) {
          // A failed promotion (code-cache exhaustion) must not terminate
          // the process when this flush runs during another unwind; the
          // credit is simply dropped.
        }
      }
    }
  } frame_exit{this,       ctx, frame,     tel,          m,
               arena_mark, bc,  backedges, fuel_charged, tiered_};

  // On-stack replacement: once THIS frame's taken back edges cross the
  // trigger, compile a continuation at the loop header and finish the
  // invocation in compiled code (DESIGN.md §10). The OSR counter doubles as
  // the fuel-metering counter: both ride one `++backedges == pulse_next`
  // compare in the dispatch loop, so arming fuel adds no second branch to
  // the hot path (DESIGN.md §11). With OSR armed the pulse cadence is the
  // OSR trigger; fuel alone pulses every kFuelPulseBackedges; with neither,
  // pulse_next parks at 0 and only matches on 32-bit wrap (a harmless
  // no-op pulse).
  const std::uint32_t osr_step = tiered_ ? engine_.osr_step() : 0;
  const bool fuel_on = ctx.fuel.active;
  const std::uint32_t pulse_step =
      osr_step != 0 ? osr_step : (fuel_on ? kFuelPulseBackedges : 0);
  std::uint32_t pulse_next = pulse_step;
  bool osr_armed = osr_step != 0;
  Slot osr_result;
  auto try_osr = [&](std::int32_t header) -> bool {
    if (!osr_armed || !uw.idle()) return false;
    const auto& entry_stack = m.stack_in[static_cast<std::size_t>(header)];
    if (static_cast<std::size_t>(frame.sp) != entry_stack.size()) {
      return false;
    }
    const regir::RCode* rc = engine_.osr_code(m, header);
    if (rc == nullptr) {
      // Unbuildable continuation: stop trying in this frame. Fuel still
      // needs pulses, so only park the counter when it has no other client.
      osr_armed = false;
      if (!fuel_on) pulse_next = 0;
      return false;
    }
    // Live frame state -> continuation arguments: slots, then the operand
    // stack bottom-up (the continuation signature orders them the same).
    std::vector<Slot> a(nslots + entry_stack.size());
    for (std::size_t i = 0; i < nslots; ++i) a[i] = frame.slots[i].v;
    for (std::int32_t k = 0; k < frame.sp; ++k) {
      a[nslots + static_cast<std::size_t>(k)] = frame.stack[k].v;
    }
    osr_result = engine_.osr_enter(ctx, *rc, header, a.data());
    return true;
  };
  // Fires when backedges hits pulse_next: charges the pulse window's fuel
  // (killing the job with a catchable FuelExhausted at this safepoint when
  // the budget runs dry — reported via ctx.pending_exception), then
  // attempts OSR. Re-arms after every firing so transient OSR failures
  // retry and an exhausted-but-caught job is re-killed a pulse later.
  auto pulse = [&](std::int32_t header) -> bool {
    pulse_next += pulse_step;
    if (fuel_on) {
      ctx.fuel.charge(backedges - fuel_charged);
      fuel_charged = backedges;
      if (ctx.fuel.exhausted()) {
        vm_.throw_exception(ctx, mod.fuel_exhausted_class(),
                            "fuel budget exhausted");
        return false;
      }
      // The wall-clock deadline rides the same pulse: one clock read per
      // window, only when a deadline is armed (DESIGN.md §14).
      if (ctx.fuel.past_deadline()) {
        vm_.throw_exception(ctx, mod.deadline_exceeded_class(),
                            "wall-clock deadline exceeded");
        return false;
      }
    }
    return try_osr(header);
  };

  auto push = [&](ValType t, Slot v) { push_portable(frame, t, v); };
  (void)st;

  for (;;) {
    vm_.safepoint_poll(ctx);  // per-instruction: the portable engine's tax
    // Defensive dispatch checks (pc range, operand stack bounds): the
    // portability layer re-validates state on every instruction instead of
    // trusting the verifier, exactly the SSCLI trade-off the paper measures.
    if (static_cast<std::uint32_t>(pc) >= m.code.size() ||
        static_cast<std::uint32_t>(frame.sp) >
            static_cast<std::uint32_t>(m.max_stack)) {
      INTERP_THROW(mod.exception_class(), "interpreter state corrupt");
    }
    {
    ++bc;
    const Instr& in = m.code[static_cast<std::size_t>(pc)];
    switch (in.op) {
      case Op::NOP:
        break;
      case Op::LDC_I4:
        push(ValType::I32, Slot::from_i32(static_cast<std::int32_t>(in.imm.i64)));
        break;
      case Op::LDC_I8:
        push(ValType::I64, Slot::from_i64(in.imm.i64));
        break;
      case Op::LDC_R4:
        push(ValType::F32, Slot::from_f32(static_cast<float>(in.imm.f64)));
        break;
      case Op::LDC_R8:
        push(ValType::F64, Slot::from_f64(in.imm.f64));
        break;
      case Op::LDNULL:
        push(ValType::Ref, Slot::from_ref(nullptr));
        break;
      case Op::LDSTR: {
        ObjRef s = vm_.heap().alloc_string(mod.string_at(in.a), &ctx.tlab);
        if (s == nullptr) {
          INTERP_THROW(mod.out_of_memory_class(),
                       "allocation budget exhausted");
        }
        push(ValType::Ref, Slot::from_ref(s));
        break;
      }

      case Op::LDLOC: {
        const TaggedSlot& s = frame.slots[m.num_args() + static_cast<std::size_t>(in.a)];
        push(s.tag, s.v);
        break;
      }
      case Op::STLOC: {
        frame.slots[m.num_args() + static_cast<std::size_t>(in.a)] =
            pop_portable(frame);
        break;
      }
      case Op::LDARG: {
        const TaggedSlot& s = frame.slots[static_cast<std::size_t>(in.a)];
        push(s.tag, s.v);
        break;
      }
      case Op::STARG: {
        frame.slots[static_cast<std::size_t>(in.a)] = pop_portable(frame);
        break;
      }
      case Op::DUP:
        st[frame.sp] = st[frame.sp - 1];
        ++frame.sp;
        break;
      case Op::POP:
        --frame.sp;
        break;

      case Op::ADD:
      case Op::SUB:
      case Op::MUL: {
        TaggedSlot b = pop_portable(frame);
        TaggedSlot a = pop_portable(frame);
        if (a.tag != b.tag) {
          INTERP_THROW(mod.invalid_cast_class(), "operand tag mismatch");
        }
        Slot r;
        // Dynamic tag dispatch: the Rotor-style generic arithmetic path.
        switch (a.tag) {
          case ValType::I32:
            r = Slot::from_i32(in.op == Op::ADD ? arith::add_i32(a.v.i32, b.v.i32)
                               : in.op == Op::SUB ? arith::sub_i32(a.v.i32, b.v.i32)
                                                  : arith::mul_i32(a.v.i32, b.v.i32));
            break;
          case ValType::I64:
            r = Slot::from_i64(in.op == Op::ADD ? arith::add_i64(a.v.i64, b.v.i64)
                               : in.op == Op::SUB ? arith::sub_i64(a.v.i64, b.v.i64)
                                                  : arith::mul_i64(a.v.i64, b.v.i64));
            break;
          case ValType::F32:
            r = Slot::from_f32(in.op == Op::ADD ? a.v.f32 + b.v.f32
                               : in.op == Op::SUB ? a.v.f32 - b.v.f32
                                                  : a.v.f32 * b.v.f32);
            break;
          default:
            r = Slot::from_f64(in.op == Op::ADD ? a.v.f64 + b.v.f64
                               : in.op == Op::SUB ? a.v.f64 - b.v.f64
                                                  : a.v.f64 * b.v.f64);
            break;
        }
        push(a.tag, r);
        break;
      }
      case Op::DIV:
      case Op::REM: {
        TaggedSlot b = pop_portable(frame);
        TaggedSlot a = pop_portable(frame);
        if (a.tag != b.tag) {
          INTERP_THROW(mod.invalid_cast_class(), "operand tag mismatch");
        }
        switch (a.tag) {
          case ValType::I32: {
            std::int32_t out;
            const auto s = in.op == Op::DIV ? arith::div_i32(a.v.i32, b.v.i32, &out)
                                            : arith::rem_i32(a.v.i32, b.v.i32, &out);
            if (s == arith::DivStatus::DivideByZero) {
              INTERP_THROW(mod.divide_by_zero_class(), "division by zero");
            }
            if (s == arith::DivStatus::Overflow) {
              INTERP_THROW(mod.arithmetic_class(), "integer overflow in division");
            }
            push(ValType::I32, Slot::from_i32(out));
            break;
          }
          case ValType::I64: {
            std::int64_t out;
            const auto s = in.op == Op::DIV ? arith::div_i64(a.v.i64, b.v.i64, &out)
                                            : arith::rem_i64(a.v.i64, b.v.i64, &out);
            if (s == arith::DivStatus::DivideByZero) {
              INTERP_THROW(mod.divide_by_zero_class(), "division by zero");
            }
            if (s == arith::DivStatus::Overflow) {
              INTERP_THROW(mod.arithmetic_class(), "integer overflow in division");
            }
            push(ValType::I64, Slot::from_i64(out));
            break;
          }
          case ValType::F32:
            push(ValType::F32,
                 Slot::from_f32(in.op == Op::DIV ? a.v.f32 / b.v.f32
                                                 : std::fmod(a.v.f32, b.v.f32)));
            break;
          default:
            push(ValType::F64,
                 Slot::from_f64(in.op == Op::DIV ? a.v.f64 / b.v.f64
                                                 : std::fmod(a.v.f64, b.v.f64)));
            break;
        }
        break;
      }
      case Op::NEG: {
        TaggedSlot a = st[--frame.sp];
        switch (a.tag) {
          case ValType::I32: push(a.tag, Slot::from_i32(arith::sub_i32(0, a.v.i32))); break;
          case ValType::I64: push(a.tag, Slot::from_i64(arith::sub_i64(0, a.v.i64))); break;
          case ValType::F32: push(a.tag, Slot::from_f32(-a.v.f32)); break;
          default: push(a.tag, Slot::from_f64(-a.v.f64)); break;
        }
        break;
      }

      case Op::AND:
      case Op::OR:
      case Op::XOR: {
        TaggedSlot b = pop_portable(frame);
        TaggedSlot a = pop_portable(frame);
        if (a.tag == ValType::I32) {
          const std::int32_t r = in.op == Op::AND ? (a.v.i32 & b.v.i32)
                                 : in.op == Op::OR ? (a.v.i32 | b.v.i32)
                                                   : (a.v.i32 ^ b.v.i32);
          push(ValType::I32, Slot::from_i32(r));
        } else {
          const std::int64_t r = in.op == Op::AND ? (a.v.i64 & b.v.i64)
                                 : in.op == Op::OR ? (a.v.i64 | b.v.i64)
                                                   : (a.v.i64 ^ b.v.i64);
          push(ValType::I64, Slot::from_i64(r));
        }
        break;
      }
      case Op::NOT: {
        TaggedSlot a = st[--frame.sp];
        if (a.tag == ValType::I32) push(a.tag, Slot::from_i32(~a.v.i32));
        else push(a.tag, Slot::from_i64(~a.v.i64));
        break;
      }
      case Op::SHL:
      case Op::SHR:
      case Op::SHR_UN: {
        TaggedSlot n = pop_portable(frame);
        TaggedSlot a = pop_portable(frame);
        if (a.tag == ValType::I32) {
          const std::int32_t r = in.op == Op::SHL ? arith::shl_i32(a.v.i32, n.v.i32)
                                 : in.op == Op::SHR ? arith::shr_i32(a.v.i32, n.v.i32)
                                                    : arith::shru_i32(a.v.i32, n.v.i32);
          push(ValType::I32, Slot::from_i32(r));
        } else {
          const std::int64_t r = in.op == Op::SHL ? arith::shl_i64(a.v.i64, n.v.i32)
                                 : in.op == Op::SHR ? arith::shr_i64(a.v.i64, n.v.i32)
                                                    : arith::shru_i64(a.v.i64, n.v.i32);
          push(ValType::I64, Slot::from_i64(r));
        }
        break;
      }

      case Op::CEQ:
      case Op::CGT:
      case Op::CLT: {
        TaggedSlot b = pop_portable(frame);
        TaggedSlot a = pop_portable(frame);
        if (a.tag != b.tag) {
          INTERP_THROW(mod.invalid_cast_class(), "operand tag mismatch");
        }
        bool r = false;
        switch (a.tag) {
          case ValType::I32:
            r = in.op == Op::CEQ ? a.v.i32 == b.v.i32
                : in.op == Op::CGT ? a.v.i32 > b.v.i32 : a.v.i32 < b.v.i32;
            break;
          case ValType::I64:
            r = in.op == Op::CEQ ? a.v.i64 == b.v.i64
                : in.op == Op::CGT ? a.v.i64 > b.v.i64 : a.v.i64 < b.v.i64;
            break;
          case ValType::F32:
            r = in.op == Op::CEQ ? a.v.f32 == b.v.f32
                : in.op == Op::CGT ? a.v.f32 > b.v.f32 : a.v.f32 < b.v.f32;
            break;
          case ValType::F64:
            r = in.op == Op::CEQ ? a.v.f64 == b.v.f64
                : in.op == Op::CGT ? a.v.f64 > b.v.f64 : a.v.f64 < b.v.f64;
            break;
          case ValType::Ref:
            r = in.op == Op::CEQ && a.v.ref == b.v.ref;
            break;
          case ValType::None:
            break;
        }
        push(ValType::I32, Slot::from_i32(r ? 1 : 0));
        break;
      }

      case Op::BR:
        if (in.a <= pc && ++backedges == pulse_next) {
          if (pulse(in.a)) return osr_result;
          if (ctx.has_pending()) goto dispatch_exception;  // fuel fault
        }
        pc = in.a;
        continue;
      case Op::BRTRUE:
      case Op::BRFALSE: {
        TaggedSlot a = st[--frame.sp];
        bool truth;
        switch (a.tag) {
          case ValType::Ref: truth = a.v.ref != nullptr; break;
          case ValType::I64: truth = a.v.i64 != 0; break;
          default: truth = a.v.i32 != 0; break;
        }
        if (truth == (in.op == Op::BRTRUE)) {
          if (in.a <= pc && ++backedges == pulse_next) {
            if (pulse(in.a)) return osr_result;
            if (ctx.has_pending()) goto dispatch_exception;  // fuel fault
          }
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BLE:
      case Op::BGT:
      case Op::BGE: {
        TaggedSlot b = pop_portable(frame);
        TaggedSlot a = pop_portable(frame);
        if (a.tag != b.tag) {
          INTERP_THROW(mod.invalid_cast_class(), "operand tag mismatch");
        }
        bool taken = false;
        auto cmp = [&](auto x, auto y) {
          switch (in.op) {
            case Op::BEQ: return x == y;
            case Op::BNE: return x != y;
            case Op::BLT: return x < y;
            case Op::BLE: return x <= y;
            case Op::BGT: return x > y;
            default: return x >= y;
          }
        };
        switch (a.tag) {
          case ValType::I32: taken = cmp(a.v.i32, b.v.i32); break;
          case ValType::I64: taken = cmp(a.v.i64, b.v.i64); break;
          case ValType::F32: taken = cmp(a.v.f32, b.v.f32); break;
          case ValType::F64: taken = cmp(a.v.f64, b.v.f64); break;
          case ValType::Ref:
            taken = in.op == Op::BEQ ? a.v.ref == b.v.ref : a.v.ref != b.v.ref;
            break;
          case ValType::None: break;
        }
        if (taken) {
          if (in.a <= pc && ++backedges == pulse_next) {
            if (pulse(in.a)) return osr_result;
            if (ctx.has_pending()) goto dispatch_exception;  // fuel fault
          }
          pc = in.a;
          continue;
        }
        break;
      }

      case Op::CONV_I4:
      case Op::CONV_I8:
      case Op::CONV_R4:
      case Op::CONV_R8:
      case Op::CONV_I1:
      case Op::CONV_U1:
      case Op::CONV_I2:
      case Op::CONV_U2: {
        TaggedSlot a = st[--frame.sp];
        double fv = 0;
        std::int64_t iv = 0;
        bool is_float = a.tag == ValType::F32 || a.tag == ValType::F64;
        switch (a.tag) {
          case ValType::I32: iv = a.v.i32; fv = a.v.i32; break;
          case ValType::I64: iv = a.v.i64; fv = static_cast<double>(a.v.i64); break;
          case ValType::F32: fv = a.v.f32; break;
          default: fv = a.v.f64; break;
        }
        switch (in.op) {
          case Op::CONV_I4:
            push(ValType::I32, Slot::from_i32(is_float ? arith::f_to_i32(fv)
                                                       : static_cast<std::int32_t>(iv)));
            break;
          case Op::CONV_I8:
            push(ValType::I64, Slot::from_i64(is_float ? arith::f_to_i64(fv) : iv));
            break;
          case Op::CONV_R4:
            push(ValType::F32, Slot::from_f32(is_float ? static_cast<float>(fv)
                                                       : static_cast<float>(iv)));
            break;
          case Op::CONV_R8:
            push(ValType::F64, Slot::from_f64(is_float ? fv : static_cast<double>(iv)));
            break;
          case Op::CONV_I1: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            push(ValType::I32, Slot::from_i32(static_cast<std::int8_t>(x)));
            break;
          }
          case Op::CONV_U1: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            push(ValType::I32, Slot::from_i32(static_cast<std::uint8_t>(x)));
            break;
          }
          case Op::CONV_I2: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            push(ValType::I32, Slot::from_i32(static_cast<std::int16_t>(x)));
            break;
          }
          default: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            push(ValType::I32, Slot::from_i32(static_cast<std::uint16_t>(x)));
            break;
          }
        }
        break;
      }

      case Op::CALL: {
        const MethodDef& callee = mod.method(in.a);
        const std::size_t argc = callee.sig.params.size();
        Slot argbuf[kMaxCallArgs];
        for (std::size_t i = 0; i < argc; ++i) {
          argbuf[i] = st[frame.sp - static_cast<std::int32_t>(argc - i)].v;
        }
        // Tiered mode routes calls through the engine so a hot callee runs
        // on its promoted tier; Single mode keeps the direct recursion.
        const Slot r = tiered_ ? engine_.call(ctx, in.a, argbuf)
                               : exec(ctx, callee, argbuf);
        if (ctx.has_pending()) goto dispatch_exception;
        frame.sp -= static_cast<std::int32_t>(argc);
        if (callee.sig.ret != ValType::None) push(callee.sig.ret, r);
        break;
      }
      case Op::CALLINTR: {
        const IntrinsicDef& d = intrinsic(in.a);
        const std::size_t argc = d.sig.params.size();
        Slot argbuf[kMaxIntrinsicArgs];
        for (std::size_t i = 0; i < argc; ++i) {
          argbuf[i] = st[frame.sp - static_cast<std::int32_t>(argc - i)].v;
        }
        Slot r;
        d.fn(ctx, argbuf, &r);
        if (ctx.has_pending()) goto dispatch_exception;
        frame.sp -= static_cast<std::int32_t>(argc);
        if (d.sig.ret != ValType::None) push(d.sig.ret, r);
        break;
      }
      case Op::RET:
        if (m.sig.ret != ValType::None) result = st[frame.sp - 1].v;
        return result;  // frame_exit tears down

      case Op::NEWOBJ: {
        ObjRef obj = vm_.heap().alloc_instance(in.a, &ctx.tlab);
        if (obj == nullptr) {
          INTERP_THROW(mod.out_of_memory_class(),
                       "allocation budget exhausted");
        }
        push(ValType::Ref, Slot::from_ref(obj));
        break;
      }
      case Op::LDFLD: {
        ObjRef obj = st[frame.sp - 1].v.ref;
        if (obj == nullptr) INTERP_THROW(mod.null_reference_class(), "ldfld");
        --frame.sp;
        const Slot v = obj->fields()[in.a];
        push(in.type, v);
        break;
      }
      case Op::STFLD: {
        TaggedSlot v = st[--frame.sp];
        ObjRef obj = st[--frame.sp].v.ref;
        if (obj == nullptr) INTERP_THROW(mod.null_reference_class(), "stfld");
        obj->fields()[in.a] = v.v;
        if (in.type == ValType::Ref) gc_write_barrier(obj);
        break;
      }
      case Op::LDSFLD:
        push(in.type, mod.statics(in.b)[in.a]);
        break;
      case Op::STSFLD:
        mod.statics(in.b)[in.a] = st[--frame.sp].v;
        break;

      case Op::NEWARR: {
        const std::int32_t len = st[frame.sp - 1].v.i32;
        if (len < 0) INTERP_THROW(mod.index_range_class(), "negative array size");
        ObjRef arr = vm_.heap().alloc_array(in.type, len, &ctx.tlab);
        if (arr == nullptr) {
          INTERP_THROW(mod.out_of_memory_class(),
                       "allocation budget exhausted");
        }
        st[frame.sp - 1] = {Slot::from_ref(arr), ValType::Ref};
        break;
      }
      case Op::LDLEN: {
        ObjRef arr = st[frame.sp - 1].v.ref;
        if (arr == nullptr) INTERP_THROW(mod.null_reference_class(), "ldlen");
        st[frame.sp - 1] = {Slot::from_i32(arr->length), ValType::I32};
        break;
      }
      case Op::LDELEM: {
        const std::int32_t idx = st[--frame.sp].v.i32;
        ObjRef arr = st[--frame.sp].v.ref;
        if (arr == nullptr) INTERP_THROW(mod.null_reference_class(), "ldelem");
        if (arr->kind != ObjKind::Array || arr->elem != in.type) {
          INTERP_THROW(mod.invalid_cast_class(), "ldelem element type");
        }
        if (idx < 0 || idx >= arr->length) {
          INTERP_THROW(mod.index_range_class(), "index out of range");
        }
        Slot v;
        switch (in.type) {
          case ValType::I32: v = Slot::from_i32(arr->i32_data()[idx]); break;
          case ValType::I64: v = Slot::from_i64(arr->i64_data()[idx]); break;
          case ValType::F32: v = Slot::from_f32(arr->f32_data()[idx]); break;
          case ValType::F64: v = Slot::from_f64(arr->f64_data()[idx]); break;
          default: v = Slot::from_ref(arr->ref_data()[idx]); break;
        }
        push(in.type, v);
        break;
      }
      case Op::STELEM: {
        TaggedSlot v = st[--frame.sp];
        const std::int32_t idx = st[--frame.sp].v.i32;
        ObjRef arr = st[--frame.sp].v.ref;
        if (arr == nullptr) INTERP_THROW(mod.null_reference_class(), "stelem");
        if (arr->kind != ObjKind::Array || arr->elem != in.type) {
          INTERP_THROW(mod.invalid_cast_class(), "stelem element type");
        }
        if (idx < 0 || idx >= arr->length) {
          INTERP_THROW(mod.index_range_class(), "index out of range");
        }
        switch (in.type) {
          case ValType::I32: arr->i32_data()[idx] = v.v.i32; break;
          case ValType::I64: arr->i64_data()[idx] = v.v.i64; break;
          case ValType::F32: arr->f32_data()[idx] = v.v.f32; break;
          case ValType::F64: arr->f64_data()[idx] = v.v.f64; break;
          default:
            arr->ref_data()[idx] = v.v.ref;
            gc_write_barrier(arr);
            break;
        }
        break;
      }
      case Op::NEWMAT: {
        const std::int32_t cols = st[frame.sp - 1].v.i32;
        const std::int32_t rows = st[frame.sp - 2].v.i32;
        if (rows < 0 || cols < 0) {
          INTERP_THROW(mod.index_range_class(), "negative matrix size");
        }
        ObjRef mat = vm_.heap().alloc_matrix2(in.type, rows, cols, &ctx.tlab);
        if (mat == nullptr) {
          INTERP_THROW(mod.out_of_memory_class(),
                       "allocation budget exhausted");
        }
        frame.sp -= 2;
        push(ValType::Ref, Slot::from_ref(mat));
        break;
      }
      case Op::LDELEM2: {
        const std::int32_t c = st[--frame.sp].v.i32;
        const std::int32_t r = st[--frame.sp].v.i32;
        ObjRef mat = st[--frame.sp].v.ref;
        if (mat == nullptr) INTERP_THROW(mod.null_reference_class(), "ldelem2");
        if (r < 0 || r >= mat->length || c < 0 || c >= mat->cols) {
          INTERP_THROW(mod.index_range_class(), "matrix index out of range");
        }
        const std::int64_t i = static_cast<std::int64_t>(r) * mat->cols + c;
        Slot v;
        switch (in.type) {
          case ValType::I32: v = Slot::from_i32(mat->i32_data()[i]); break;
          case ValType::I64: v = Slot::from_i64(mat->i64_data()[i]); break;
          case ValType::F32: v = Slot::from_f32(mat->f32_data()[i]); break;
          case ValType::F64: v = Slot::from_f64(mat->f64_data()[i]); break;
          default: v = Slot::from_ref(mat->ref_data()[i]); break;
        }
        push(in.type, v);
        break;
      }
      case Op::STELEM2: {
        TaggedSlot v = st[--frame.sp];
        const std::int32_t c = st[--frame.sp].v.i32;
        const std::int32_t r = st[--frame.sp].v.i32;
        ObjRef mat = st[--frame.sp].v.ref;
        if (mat == nullptr) INTERP_THROW(mod.null_reference_class(), "stelem2");
        if (r < 0 || r >= mat->length || c < 0 || c >= mat->cols) {
          INTERP_THROW(mod.index_range_class(), "matrix index out of range");
        }
        const std::int64_t i = static_cast<std::int64_t>(r) * mat->cols + c;
        switch (in.type) {
          case ValType::I32: mat->i32_data()[i] = v.v.i32; break;
          case ValType::I64: mat->i64_data()[i] = v.v.i64; break;
          case ValType::F32: mat->f32_data()[i] = v.v.f32; break;
          case ValType::F64: mat->f64_data()[i] = v.v.f64; break;
          default:
            mat->ref_data()[i] = v.v.ref;
            gc_write_barrier(mat);
            break;
        }
        break;
      }
      case Op::LDMATROWS:
      case Op::LDMATCOLS: {
        ObjRef mat = st[frame.sp - 1].v.ref;
        if (mat == nullptr) INTERP_THROW(mod.null_reference_class(), "ldmat");
        st[frame.sp - 1] = {Slot::from_i32(in.op == Op::LDMATROWS ? mat->length
                                                                  : mat->cols),
                            ValType::I32};
        break;
      }

      case Op::BOX: {
        ObjRef box = vm_.heap().alloc_box(in.type, st[frame.sp - 1].v, &ctx.tlab);
        if (box == nullptr) {
          INTERP_THROW(mod.out_of_memory_class(),
                       "allocation budget exhausted");
        }
        st[frame.sp - 1] = {Slot::from_ref(box), ValType::Ref};
        break;
      }
      case Op::UNBOX: {
        ObjRef box = st[frame.sp - 1].v.ref;
        if (box == nullptr) INTERP_THROW(mod.null_reference_class(), "unbox");
        if (box->kind != ObjKind::Boxed || box->elem != in.type) {
          INTERP_THROW(mod.invalid_cast_class(), "unbox type mismatch");
        }
        --frame.sp;
        push(in.type, box->fields()[0]);
        break;
      }

      case Op::THROW: {
        ObjRef exc = st[--frame.sp].v.ref;
        if (exc == nullptr) INTERP_THROW(mod.null_reference_class(), "throw null");
        ctx.pending_exception = exc;
        goto dispatch_exception;
      }
      case Op::LEAVE: {
        const UnwindAction a = uw.on_leave(m, pc, in.a);
        frame.sp = 0;
        pc = a.pc;
        continue;
      }
      case Op::ENDFINALLY: {
        const UnwindAction a = uw.on_endfinally(mod, m);
        switch (a.kind) {
          case UnwindAction::Kind::Resume:
          case UnwindAction::Kind::EnterFinally:
            frame.sp = 0;
            pc = a.pc;
            continue;
          case UnwindAction::Kind::EnterCatch:
            frame.sp = 0;
            push(ValType::Ref, Slot::from_ref(uw.exception()));
            pc = a.pc;
            continue;
          case UnwindAction::Kind::Propagate:
            ctx.pending_exception = uw.exception();
            return result;  // frame_exit tears down
        }
        break;
      }

      case Op::COUNT_:
        break;
    }
    }
    ++pc;
    continue;

  dispatch_exception: {
    ObjRef exc = ctx.pending_exception;
    ctx.pending_exception = nullptr;
    const UnwindAction a = uw.on_throw(mod, m, pc, exc);
    switch (a.kind) {
      case UnwindAction::Kind::EnterCatch:
        frame.sp = 0;
        push(ValType::Ref, Slot::from_ref(uw.exception()));
        pc = a.pc;
        continue;
      case UnwindAction::Kind::EnterFinally:
        frame.sp = 0;
        pc = a.pc;
        continue;
      default:
        ctx.pending_exception = exc;
        return result;  // frame_exit tears down
    }
  }
  }
}

#undef INTERP_THROW

}  // namespace

std::unique_ptr<TierBackend> make_interp_backend(VirtualMachine& vm,
                                                 TieredEngine& engine) {
  return std::make_unique<InterpBackend>(vm, engine);
}

}  // namespace hpcnet::vm

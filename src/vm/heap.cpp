#include "vm/heap.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm {

namespace {

constexpr std::size_t kAllocAlign = alignof(Slot);
constexpr std::size_t kSegmentAlign = 4096;  // page-aligned segments

/// Smallest block that can carry a header: dead space below this cannot be
/// tiled with a Free filler, so bump() pads the preceding object instead.
constexpr std::size_t kMinBlock =
    (sizeof(ObjHeader) + kAllocAlign - 1) & ~(kAllocAlign - 1);

std::size_t align_up(std::size_t n) {
  return (n + kAllocAlign - 1) & ~(kAllocAlign - 1);
}

/// Tiles [p, p+bytes) with a Free filler so the segment stays walkable.
void write_filler(char* p, std::size_t bytes) {
  auto* h = new (p) ObjHeader();
  h->kind = ObjKind::Free;
  h->alloc_bytes = static_cast<std::uint32_t>(bytes);
}

}  // namespace

std::size_t elem_size(ValType t) {
  switch (t) {
    case ValType::I32: return 4;
    case ValType::I64: return 8;
    case ValType::F32: return 4;
    case ValType::F64: return 8;
    case ValType::Ref: return sizeof(ObjRef);
    case ValType::None: break;
  }
  return 8;
}

struct Heap::Segment {
  explicit Segment(std::size_t n)
      : mem(static_cast<char*>(
            ::operator new(n, std::align_val_t{kSegmentAlign}))),
        bytes(n) {}
  ~Segment() { ::operator delete(mem, std::align_val_t{kSegmentAlign}); }
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  char* mem;
  std::size_t bytes;
};

Heap::Heap(Module* module, std::size_t gc_threshold_bytes)
    : module_(module), threshold_(gc_threshold_bytes) {
  tlabs_.push_back(&shared_tlab_);
}

Heap::~Heap() {
  // Registered TLABs may dangle here (the VM tears contexts down first);
  // only the raw storage needs freeing.
  for (ObjRef o : large_) ::operator delete(o, std::align_val_t{kAllocAlign});
}

void Heap::register_tlab(Tlab& tlab) {
  std::lock_guard<std::mutex> lock(mu_);
  tlabs_.push_back(&tlab);
}

void Heap::unregister_tlab(Tlab& tlab) {
  std::lock_guard<std::mutex> lock(mu_);
  fold_locked(tlab);
  retire_locked(tlab, /*count_waste=*/true);
  tlabs_.erase(std::remove(tlabs_.begin(), tlabs_.end(), &tlab),
               tlabs_.end());
}

void Heap::retire_tlab(Tlab& tlab) {
  std::lock_guard<std::mutex> lock(mu_);
  fold_locked(tlab);
  retire_locked(tlab, /*count_waste=*/true);
}

void Heap::fold_locked(Tlab& t) {
  if (t.pending_allocs_ == 0 && t.pending_bytes_ == 0) return;
  stats_.total_allocations += t.pending_allocs_;
  live_objects_ += t.pending_allocs_;
  live_bytes_ += t.pending_bytes_;
  bytes_since_gc_.fetch_add(t.pending_bytes_, std::memory_order_relaxed);
  t.pending_allocs_ = 0;
  t.pending_bytes_ = 0;
}

void Heap::retire_locked(Tlab& t, bool count_waste) {
  if (t.cur_ != nullptr && t.cur_ < t.end_) {
    const std::size_t tail = static_cast<std::size_t>(t.end_ - t.cur_);
    write_filler(t.cur_, tail);
    if (count_waste) {
      telemetry::count(telemetry::Counter::TlabWasteBytes, tail);
    }
  }
  t.cur_ = nullptr;
  t.end_ = nullptr;
}

bool Heap::acquire_region_locked(Tlab& t, std::size_t total) {
  telemetry::count(telemetry::Counter::TlabRefills);
  if (t.budget_ == nullptr) {
    // First fit from the free runs the last sweep recovered inside live
    // segments; the run's filler header is overwritten as the TLAB bumps.
    for (std::size_t i = 0; i < free_runs_.size(); ++i) {
      if (free_runs_[i].bytes >= total) {
        t.cur_ = free_runs_[i].p;
        t.end_ = free_runs_[i].p + free_runs_[i].bytes;
        free_runs_[i] = free_runs_.back();
        free_runs_.pop_back();
        return true;
      }
    }
  } else {
    // Budgeted refills bypass the free-run first fit and always charge (and
    // receive) exactly one segment granule: free-run sizes depend on
    // co-tenant-driven GC/fragmentation history, so a fixed per-refill
    // charge is what keeps the tenant's budget-kill point deterministic —
    // and caps how much budget one TLAB window can consume. A refill is
    // refused only when the tenant cannot pay for a single granule.
    if (!t.budget_->try_charge(kSegmentBytes)) return false;
    t.budget_charged_ += kSegmentBytes;
  }
  // Whole segment: reuse a pooled one or take fresh pages.
  std::unique_ptr<Segment> seg;
  if (!pool_.empty()) {
    seg = std::move(pool_.back());
    pool_.pop_back();
  } else {
    seg = std::make_unique<Segment>(kSegmentBytes);
  }
  t.cur_ = seg->mem;
  t.end_ = seg->mem + seg->bytes;
  segments_.push_back(std::move(seg));
  return true;
}

ObjRef Heap::bump(Tlab& t, std::size_t total) {
  const std::size_t rem = static_cast<std::size_t>(t.end_ - t.cur_) - total;
  // A tail too small to carry a filler header would break segment walking;
  // absorb it into this block as hidden padding.
  if (rem != 0 && rem < kMinBlock) total += rem;
  char* p = t.cur_;
  t.cur_ += total;
  std::memset(p, 0, total);
  auto* obj = new (p) ObjHeader();
  obj->alloc_bytes = static_cast<std::uint32_t>(total);
  t.pending_allocs_ += 1;
  t.pending_bytes_ += total;
  telemetry::record_allocation(total);
  return obj;
}

ObjRef Heap::alloc_raw(std::size_t payload_bytes, Tlab* tlab) {
  const std::size_t total = align_up(sizeof(ObjHeader) + payload_bytes);
  // Fast path: bump inside the calling thread's TLAB, no synchronization.
  // The GC budget is deliberately not checked here — it is enforced at
  // refill points, giving the trigger one-TLAB (64 KiB) granularity.
  if (tlab != nullptr && total < kLargeThreshold && tlab->cur_ != nullptr &&
      total <= static_cast<std::size_t>(tlab->end_ - tlab->cur_)) {
    return bump(*tlab, total);
  }
  return alloc_slow(total, tlab);
}

ObjRef Heap::alloc_slow(std::size_t total, Tlab* tlab) {
  // Fold this thread's pending byte count, then decide whether to trigger a
  // collection *before* acquiring new space, with no locks held (the
  // requester stops the world and re-enters the heap via sweep()).
  bool trigger;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fold_locked(tlab != nullptr ? *tlab : shared_tlab_);
    trigger = bytes_since_gc_.load(std::memory_order_relaxed) > threshold_;
  }
  if (trigger && gc_requester_) {
    gc_requester_();
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (total >= kLargeThreshold) {
    // The large path charges exact sizes (no region rounding), which is what
    // makes memory-budget kills on big-array allocation deterministic.
    if (tlab != nullptr && tlab->budget_ != nullptr) {
      if (!tlab->budget_->try_charge(total)) return nullptr;
      tlab->budget_charged_ += total;
    }
    void* mem = ::operator new(total, std::align_val_t{kAllocAlign});
    std::memset(mem, 0, total);
    auto* obj = new (mem) ObjHeader();  // alloc_bytes stays 0: size lives in
                                        // large_sizes_ (may exceed 4 GiB)
    large_.push_back(obj);
    large_sizes_.push_back(total);
    ++stats_.total_allocations;
    ++live_objects_;
    live_bytes_ += total;
    bytes_since_gc_.fetch_add(total, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::LargeAllocs);
    telemetry::record_allocation(total);
    return obj;
  }

  // Refill. tlab-less callers share shared_tlab_, which is only ever
  // touched under mu_ — this is the old one-lock-per-object path.
  Tlab& t = tlab != nullptr ? *tlab : shared_tlab_;
  if (t.cur_ == nullptr ||
      total > static_cast<std::size_t>(t.end_ - t.cur_)) {
    retire_locked(t, /*count_waste=*/true);
    if (!acquire_region_locked(t, total)) return nullptr;
  }
  return bump(t, total);
}

ObjRef Heap::alloc_instance(std::int32_t class_id, Tlab* tlab) {
  const auto& cls = module_->klass(class_id);
  ObjRef obj = alloc_raw(cls.fields.size() * sizeof(Slot), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Instance;
  obj->klass = class_id;
  obj->length = static_cast<std::int32_t>(cls.fields.size());
  return obj;
}

ObjRef Heap::alloc_array(ValType elem, std::int32_t length, Tlab* tlab) {
  if (length < 0) throw std::invalid_argument("negative array length");
  ObjRef obj =
      alloc_raw(static_cast<std::size_t>(length) * elem_size(elem), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Array;
  obj->elem = elem;
  obj->length = length;
  return obj;
}

ObjRef Heap::alloc_matrix2(ValType elem, std::int32_t rows, std::int32_t cols,
                           Tlab* tlab) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative matrix dim");
  ObjRef obj = alloc_raw(static_cast<std::size_t>(rows) *
                             static_cast<std::size_t>(cols) * elem_size(elem),
                         tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Matrix2;
  obj->elem = elem;
  obj->length = rows;
  obj->cols = cols;
  return obj;
}

ObjRef Heap::alloc_box(ValType type, Slot value, Tlab* tlab) {
  ObjRef obj = alloc_raw(sizeof(Slot), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Boxed;
  obj->elem = type;
  obj->length = 1;
  obj->fields()[0] = value;
  return obj;
}

ObjRef Heap::alloc_string(const std::string& s, Tlab* tlab) {
  ObjRef obj = alloc_raw(s.size(), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::String;
  obj->length = static_cast<std::int32_t>(s.size());
  std::memcpy(obj->chars(), s.data(), s.size());
  return obj;
}

void Heap::mark(ObjRef root) {
  if (root == nullptr || root->marked) return;
  std::vector<ObjRef> worklist;
  root->marked = true;
  worklist.push_back(root);
  while (!worklist.empty()) {
    ObjRef obj = worklist.back();
    worklist.pop_back();
    trace(obj, worklist);
  }
}

void Heap::trace(ObjRef obj, std::vector<ObjRef>& worklist) {
  auto push = [&](ObjRef child) {
    if (child != nullptr && !child->marked) {
      child->marked = true;
      worklist.push_back(child);
    }
  };
  switch (obj->kind) {
    case ObjKind::Instance: {
      const auto& cls = module_->klass(obj->klass);
      Slot* f = obj->fields();
      for (std::size_t i = 0; i < cls.fields.size(); ++i) {
        if (cls.fields[i].type == ValType::Ref) push(f[i].ref);
      }
      break;
    }
    case ObjKind::Array:
      if (obj->elem == ValType::Ref) {
        ObjRef* data = obj->ref_data();
        for (std::int32_t i = 0; i < obj->length; ++i) push(data[i]);
      }
      break;
    case ObjKind::Matrix2:
      if (obj->elem == ValType::Ref) {
        ObjRef* data = obj->ref_data();
        const std::int64_t n =
            static_cast<std::int64_t>(obj->length) * obj->cols;
        for (std::int64_t i = 0; i < n; ++i) push(data[i]);
      }
      break;
    case ObjKind::Boxed:
      if (obj->elem == ValType::Ref) push(obj->fields()[0].ref);
      break;
    case ObjKind::String:
    case ObjKind::Free:
      break;
  }
}

void Heap::sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  // The world is stopped: every mutator is parked (the park handshake gives
  // the happens-before edge), so their TLABs can be retired here. Retiring
  // tiles each live window with a filler; the walk below reclaims it.
  for (Tlab* t : tlabs_) {
    fold_locked(*t);
    retire_locked(*t, /*count_waste=*/false);
  }

  const std::size_t allocated_window =
      bytes_since_gc_.load(std::memory_order_relaxed);
  std::size_t freed_bytes = 0;
  std::size_t swept = 0;
  live_bytes_ = 0;
  live_objects_ = 0;
  free_runs_.clear();

  // Walk each segment by the sizes stored in the headers, coalescing dead
  // blocks (including old fillers) into free runs. Fully-dead segments go
  // back to the pool; runs inside live segments get filler headers and feed
  // the next TLAB refills.
  std::size_t seg_out = 0;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    Segment& seg = *segments_[s];
    char* p = seg.mem;
    char* const seg_end = seg.mem + seg.bytes;
    bool any_live = false;
    char* run_start = nullptr;
    std::vector<FreeRun> runs;
    auto close_run = [&](char* run_end) {
      if (run_start == nullptr) return;
      runs.push_back({run_start, static_cast<std::size_t>(run_end - run_start)});
      run_start = nullptr;
    };
    while (p < seg_end) {
      auto* h = reinterpret_cast<ObjHeader*>(p);
      const std::size_t sz = h->alloc_bytes;
      if (h->marked) {
        h->marked = false;
        any_live = true;
        ++live_objects_;
        live_bytes_ += sz;
        close_run(p);
      } else {
        if (h->kind != ObjKind::Free) {
          ++swept;
          ++stats_.swept_objects;
          freed_bytes += sz;
        }
        if (run_start == nullptr) run_start = p;
      }
      p += sz;
    }
    close_run(seg_end);
    if (!any_live) {
      if (pool_.size() < kMaxPooledSegments) {
        pool_.push_back(std::move(segments_[s]));
      }
      continue;  // segment leaves the walkable list
    }
    for (const FreeRun& r : runs) {
      write_filler(r.p, r.bytes);
      free_runs_.push_back(r);
    }
    segments_[seg_out++] = std::move(segments_[s]);
  }
  segments_.resize(seg_out);

  // Large objects are swept individually, as the old flat heap did.
  std::size_t out = 0;
  for (std::size_t i = 0; i < large_.size(); ++i) {
    ObjRef obj = large_[i];
    if (obj->marked) {
      obj->marked = false;
      ++live_objects_;
      live_bytes_ += large_sizes_[i];
      large_[out] = obj;
      large_sizes_[out] = large_sizes_[i];
      ++out;
    } else {
      freed_bytes += large_sizes_[i];
      ++swept;
      ++stats_.swept_objects;
      ::operator delete(obj, std::align_val_t{kAllocAlign});
    }
  }
  large_.resize(out);
  large_sizes_.resize(out);

  bytes_since_gc_.store(0, std::memory_order_relaxed);
  ++stats_.collections;
  // Runs during the stop-the-world window; the VM's collect() folds these
  // into the pause event it records when the world resumes.
  telemetry::record_gc_sweep(allocated_window, freed_bytes, swept,
                             segments_.size());
}

HeapStats Heap::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HeapStats s = stats_;
  s.live_objects = live_objects_;
  s.live_bytes = live_bytes_;
  // Read (without resetting) the registered TLABs' unfolded counts. Exact
  // when the owning threads are quiescent/joined; a thread racing its own
  // bump path may be missed, like the telemetry sinks.
  for (const Tlab* t : tlabs_) {
    s.total_allocations += t->pending_allocs_;
    s.live_objects += t->pending_allocs_;
    s.live_bytes += t->pending_bytes_;
  }
  s.segments = segments_.size();
  s.pooled_segments = pool_.size();
  s.large_objects = large_.size();
  return s;
}

std::size_t Heap::bytes_since_gc() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = bytes_since_gc_.load(std::memory_order_relaxed);
  for (const Tlab* t : tlabs_) n += t->pending_bytes_;
  return n;
}

void Heap::set_threshold(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ = bytes;
}

void Heap::request_gc() {
  if (gc_requester_) gc_requester_();
}

std::string string_value(ObjRef s) {
  if (s == nullptr || s->kind != ObjKind::String) return {};
  return std::string(s->chars(), static_cast<std::size_t>(s->length));
}

}  // namespace hpcnet::vm

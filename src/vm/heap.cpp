#include "vm/heap.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm {

namespace {

constexpr std::size_t kAllocAlign = alignof(Slot);
/// Segments are aligned to their own size so the write barrier can mask any
/// object address down to the segment base (and its embedded card table).
constexpr std::size_t kSegmentAlign = kGcSegmentBytes;

/// Smallest block that can carry a header: dead space below this cannot be
/// tiled with a Free filler, so bump() pads the preceding object instead.
constexpr std::size_t kMinBlock =
    (sizeof(ObjHeader) + kAllocAlign - 1) & ~(kAllocAlign - 1);

/// Parallel mark work granule: refs per chunk handed between workers, and
/// the local-stack size past which a worker donates a chunk to the pool.
constexpr std::size_t kMarkChunk = 256;
constexpr std::size_t kMarkSpill = 1024;
constexpr std::size_t kMarkDonateMin = 8;

std::size_t align_up(std::size_t n) {
  return (n + kAllocAlign - 1) & ~(kAllocAlign - 1);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Tiles [p, p+bytes) with a Free filler so the segment stays walkable.
void write_filler(char* p, std::size_t bytes) {
  auto* h = new (p) ObjHeader();
  h->kind = ObjKind::Free;
  h->alloc_bytes = static_cast<std::uint32_t>(bytes);
}

int default_gc_threads() {
  if (const char* env = std::getenv("HPCNET_GC_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return std::min(n, 16);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, hw != 0 ? hw : 1u));
}

}  // namespace

std::size_t elem_size(ValType t) {
  switch (t) {
    case ValType::I32: return 4;
    case ValType::I64: return 8;
    case ValType::F32: return 4;
    case ValType::F64: return 8;
    case ValType::Ref: return sizeof(ObjRef);
    case ValType::None: break;
  }
  return 8;
}

struct Heap::Segment {
  explicit Segment(std::size_t n)
      : mem(static_cast<char*>(
            ::operator new(n, std::align_val_t{kSegmentAlign}))),
        bytes(n) {
    new (mem) SegmentMeta();
  }
  ~Segment() { ::operator delete(mem, std::align_val_t{kSegmentAlign}); }
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  SegmentMeta* meta() { return reinterpret_cast<SegmentMeta*>(mem); }
  char* area_begin() { return mem + kGcSegmentMetaBytes; }
  char* area_end() { return mem + bytes; }

  char* mem;
  std::size_t bytes;
};

Heap::Heap(Module* module, std::size_t gc_threshold_bytes)
    : module_(module),
      threshold_(gc_threshold_bytes),
      major_threshold_(gc_threshold_bytes * 4),
      gc_threads_(default_gc_threads()) {
  tlabs_.push_back(&shared_tlab_);
  if (std::getenv("HPCNET_GC_LAZY_SWEEP") != nullptr) lazy_sweep_ = true;
}

Heap::~Heap() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : gc_workers_) t.join();
  // Registered TLABs may dangle here (the VM tears contexts down first);
  // only the raw storage needs freeing.
  for (ObjRef o : large_) ::operator delete(o, std::align_val_t{kAllocAlign});
}

void Heap::register_tlab(Tlab& tlab) {
  std::lock_guard<std::mutex> lock(mu_);
  tlabs_.push_back(&tlab);
}

void Heap::unregister_tlab(Tlab& tlab) {
  std::lock_guard<std::mutex> lock(mu_);
  fold_locked(tlab);
  retire_locked(tlab, /*count_waste=*/true);
  tlabs_.erase(std::remove(tlabs_.begin(), tlabs_.end(), &tlab),
               tlabs_.end());
}

void Heap::retire_tlab(Tlab& tlab) {
  std::lock_guard<std::mutex> lock(mu_);
  fold_locked(tlab);
  retire_locked(tlab, /*count_waste=*/true);
}

void Heap::fold_locked(Tlab& t) {
  if (t.pending_allocs_ == 0 && t.pending_bytes_ == 0) return;
  stats_.total_allocations += t.pending_allocs_;
  live_objects_ += t.pending_allocs_;
  live_bytes_ += t.pending_bytes_;
  bytes_since_gc_.fetch_add(t.pending_bytes_, std::memory_order_relaxed);
  t.pending_allocs_ = 0;
  t.pending_bytes_ = 0;
}

void Heap::retire_locked(Tlab& t, bool count_waste) {
  if (t.cur_ != nullptr && t.cur_ < t.end_) {
    const std::size_t tail = static_cast<std::size_t>(t.end_ - t.cur_);
    write_filler(t.cur_, tail);
    if (count_waste) {
      telemetry::count(telemetry::Counter::TlabWasteBytes, tail);
    }
  }
  t.cur_ = nullptr;
  t.end_ = nullptr;
}

bool Heap::acquire_region_locked(Tlab& t, std::size_t total) {
  telemetry::count(telemetry::Counter::TlabRefills);
  if (t.budget_ == nullptr) {
    // First fit from the free runs the last sweep recovered inside live
    // segments; the run's filler header is overwritten as the TLAB bumps.
    // With lazy sweeping on, a dry run list sweeps deferred segments one at
    // a time until a fitting run appears (the sweep-on-refill fallback).
    for (;;) {
      for (std::size_t i = 0; i < free_runs_.size(); ++i) {
        if (free_runs_[i].bytes >= total) {
          t.cur_ = free_runs_[i].p;
          t.end_ = free_runs_[i].p + free_runs_[i].bytes;
          free_runs_[i] = free_runs_.back();
          free_runs_.pop_back();
          young_windows_.push_back({t.cur_, t.end_});
          return true;
        }
      }
      if (!lazy_sweep_one_locked()) break;
    }
  } else {
    // Budgeted refills bypass the free-run first fit and always charge (and
    // receive) exactly one segment granule: free-run sizes depend on
    // co-tenant-driven GC/fragmentation history, so a fixed per-refill
    // charge is what keeps the tenant's budget-kill point deterministic —
    // and caps how much budget one TLAB window can consume. A refill is
    // refused only when the tenant cannot pay for a single granule.
    if (!t.budget_->try_charge(kSegmentBytes)) return false;
    t.budget_charged_ += kSegmentBytes;
  }
  // Whole segment: reuse a pooled one or take fresh pages. Pooled segments
  // may carry stale cards from their previous life; clear them so a minor
  // collection does not scan a fully-young segment.
  std::unique_ptr<Segment> seg;
  if (!pool_.empty()) {
    seg = std::move(pool_.back());
    pool_.pop_back();
    seg->meta()->clear();
  } else {
    seg = std::make_unique<Segment>(kSegmentBytes);
  }
  // Wire the barrier's dirty-list push to this heap before any object (and
  // therefore any ref store) can exist in the segment.
  seg->meta()->dirty_list = &dirty_head_;
  t.cur_ = seg->area_begin();
  t.end_ = seg->area_end();
  young_windows_.push_back({t.cur_, t.end_});
  segments_.push_back(std::move(seg));
  return true;
}

ObjRef Heap::bump(Tlab& t, std::size_t total) {
  const std::size_t rem = static_cast<std::size_t>(t.end_ - t.cur_) - total;
  // A tail too small to carry a filler header would break segment walking;
  // absorb it into this block as hidden padding.
  if (rem != 0 && rem < kMinBlock) total += rem;
  char* p = t.cur_;
  t.cur_ += total;
  std::memset(p, 0, total);
  auto* obj = new (p) ObjHeader();
  obj->alloc_bytes = static_cast<std::uint32_t>(total);
  t.pending_allocs_ += 1;
  t.pending_bytes_ += total;
  telemetry::record_allocation(total);
  return obj;
}

ObjRef Heap::alloc_raw(std::size_t payload_bytes, Tlab* tlab) {
  const std::size_t total = align_up(sizeof(ObjHeader) + payload_bytes);
  // Fast path: bump inside the calling thread's TLAB, no synchronization.
  // The GC budget is deliberately not checked here — it is enforced at
  // refill points, giving the trigger one-TLAB (64 KiB) granularity.
  if (tlab != nullptr && total < kLargeThreshold && tlab->cur_ != nullptr &&
      total <= static_cast<std::size_t>(tlab->end_ - tlab->cur_)) {
    return bump(*tlab, total);
  }
  return alloc_slow(total, tlab);
}

ObjRef Heap::alloc_slow(std::size_t total, Tlab* tlab) {
  // Fold this thread's pending byte count, then decide whether to trigger a
  // collection *before* acquiring new space, with no locks held (the
  // requester stops the world and re-enters the heap via gc_prepare). The
  // request is Minor unless the old generation has outgrown its own
  // threshold — minor pauses track nursery size, not total heap size.
  bool trigger;
  GcKind kind = GcKind::Minor;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fold_locked(tlab != nullptr ? *tlab : shared_tlab_);
    trigger = bytes_since_gc_.load(std::memory_order_relaxed) > threshold_;
    if (trigger && old_bytes_ > major_threshold_) kind = GcKind::Major;
  }
  if (trigger && gc_requester_) {
    gc_requester_(kind);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (total >= kLargeThreshold) {
    // The large path charges exact sizes (no region rounding), which is what
    // makes memory-budget kills on big-array allocation deterministic.
    if (tlab != nullptr && tlab->budget_ != nullptr) {
      if (!tlab->budget_->try_charge(total)) return nullptr;
      tlab->budget_charged_ += total;
    }
    void* mem = ::operator new(total, std::align_val_t{kAllocAlign});
    std::memset(mem, 0, total);
    auto* obj = new (mem) ObjHeader();  // alloc_bytes stays 0: size lives in
                                        // large_sizes_ (may exceed 4 GiB)
    large_.push_back(obj);
    large_sizes_.push_back(total);
    ++stats_.total_allocations;
    ++live_objects_;
    live_bytes_ += total;
    bytes_since_gc_.fetch_add(total, std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::LargeAllocs);
    telemetry::record_allocation(total);
    return obj;
  }

  // Refill. tlab-less callers share shared_tlab_, which is only ever
  // touched under mu_ — this is the old one-lock-per-object path.
  Tlab& t = tlab != nullptr ? *tlab : shared_tlab_;
  if (t.cur_ == nullptr ||
      total > static_cast<std::size_t>(t.end_ - t.cur_)) {
    retire_locked(t, /*count_waste=*/true);
    if (!acquire_region_locked(t, total)) return nullptr;
  }
  return bump(t, total);
}

ObjRef Heap::alloc_instance(std::int32_t class_id, Tlab* tlab) {
  const auto& cls = module_->klass(class_id);
  ObjRef obj = alloc_raw(cls.fields.size() * sizeof(Slot), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Instance;
  obj->klass = class_id;
  obj->length = static_cast<std::int32_t>(cls.fields.size());
  return obj;
}

ObjRef Heap::alloc_array(ValType elem, std::int32_t length, Tlab* tlab) {
  if (length < 0) throw std::invalid_argument("negative array length");
  ObjRef obj =
      alloc_raw(static_cast<std::size_t>(length) * elem_size(elem), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Array;
  obj->elem = elem;
  obj->length = length;
  return obj;
}

ObjRef Heap::alloc_matrix2(ValType elem, std::int32_t rows, std::int32_t cols,
                           Tlab* tlab) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative matrix dim");
  ObjRef obj = alloc_raw(static_cast<std::size_t>(rows) *
                             static_cast<std::size_t>(cols) * elem_size(elem),
                         tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Matrix2;
  obj->elem = elem;
  obj->length = rows;
  obj->cols = cols;
  return obj;
}

ObjRef Heap::alloc_box(ValType type, Slot value, Tlab* tlab) {
  ObjRef obj = alloc_raw(sizeof(Slot), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::Boxed;
  obj->elem = type;
  obj->length = 1;
  obj->fields()[0] = value;  // initializing store: the box is young
  return obj;
}

ObjRef Heap::alloc_string(const std::string& s, Tlab* tlab) {
  ObjRef obj = alloc_raw(s.size(), tlab);
  if (obj == nullptr) return nullptr;  // tenant budget refused
  obj->kind = ObjKind::String;
  obj->length = static_cast<std::int32_t>(s.size());
  std::memcpy(obj->chars(), s.data(), s.size());
  return obj;
}

// --------------------------------------------------------------------------
// Collection. All entry points below run while the world is stopped; the
// park handshake in VirtualMachine::collect() provides the happens-before
// edge from every mutator's last store to the collector (and back on
// resume), so plain reads of object payloads are race-free here.

namespace {

/// Applies `push` to every reference field of `obj`. The push callback owns
/// the mark-claim and generation filter.
template <typename PushFn>
void trace_refs(const Module& mod, ObjRef obj, PushFn&& push) {
  switch (obj->kind) {
    case ObjKind::Instance: {
      const auto& cls = mod.klass(obj->klass);
      Slot* f = obj->fields();
      for (std::size_t i = 0; i < cls.fields.size(); ++i) {
        if (cls.fields[i].type == ValType::Ref) push(f[i].ref);
      }
      break;
    }
    case ObjKind::Array:
      if (obj->elem == ValType::Ref) {
        ObjRef* data = obj->ref_data();
        for (std::int32_t i = 0; i < obj->length; ++i) push(data[i]);
      }
      break;
    case ObjKind::Matrix2:
      if (obj->elem == ValType::Ref) {
        ObjRef* data = obj->ref_data();
        const std::int64_t n =
            static_cast<std::int64_t>(obj->length) * obj->cols;
        for (std::int64_t i = 0; i < n; ++i) push(data[i]);
      }
      break;
    case ObjKind::Boxed:
      if (obj->elem == ValType::Ref) push(obj->fields()[0].ref);
      break;
    case ObjKind::String:
    case ObjKind::Free:
      break;
  }
}

}  // namespace

void Heap::gc_prepare(GcKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  cur_kind_ = kind;
  // A fresh major mark claims bits with fetch_or; stale marks on segments a
  // lazy major never swept would resurrect their dead. Drain them first.
  if (kind == GcKind::Major) drain_unswept_locked();
  // Every mutator is parked, so their TLABs can be retired here. Retiring
  // tiles each live window with a filler; the sweep below reclaims it.
  for (Tlab* t : tlabs_) {
    fold_locked(*t);
    retire_locked(*t, /*count_waste=*/false);
  }
  worklist_.clear();
  worklist_.reserve(worklist_hwm_);
}

void Heap::mark(ObjRef root) {
  if (root == nullptr) return;
  // Minor collections never trace into the old generation: old objects are
  // live by assumption, and their young edges arrive via the card scan.
  if (cur_kind_ == GcKind::Minor && root->is_old()) return;
  if (!root->try_mark()) return;
  worklist_.push_back(root);
}

void Heap::drain_worklist_serial(bool minor) {
  std::size_t hwm = worklist_.size();
  auto push = [&](ObjRef child) {
    if (child == nullptr) return;
    if (minor && child->is_old()) return;
    if (!child->try_mark()) return;
    worklist_.push_back(child);
  };
  while (!worklist_.empty()) {
    ObjRef obj = worklist_.back();
    worklist_.pop_back();
    trace_refs(*module_, obj, push);
    hwm = std::max(hwm, worklist_.size());
  }
  worklist_hwm_ = std::max(worklist_hwm_, hwm);
}

SegmentMeta* Heap::take_dirty_segments() {
  // Pop the barrier's whole dirty list. The world is stopped, so there are
  // no concurrent pushes: one exchange detaches the list atomically and the
  // acquire pairs with the barrier's release push for the card stores.
  return dirty_head_.exchange(nullptr, std::memory_order_acquire);
}

std::size_t Heap::scan_cards_locked() {
  // Dirty-card scan (minor only): visit old objects whose header card was
  // dirtied by the write barrier and enqueue their unmarked young children.
  // Only segments on the barrier's dirty list are walked, so the scan's
  // cost tracks mutator store activity, not old-generation size — that is
  // what keeps minor pauses flat as the heap grows. Cards are cleared as
  // they are consumed; that is sound because every young survivor is
  // promoted this cycle, turning old->young edges into old->old. Cards on
  // dead-but-unswept old objects (lazy mode) retain at worst one cycle of
  // floating garbage; they cannot corrupt the walk.
  std::size_t scanned = 0;
  auto push = [&](ObjRef child) {
    if (child == nullptr || child->is_old()) return;
    if (!child->try_mark()) return;
    worklist_.push_back(child);
  };
  for (SegmentMeta* meta = take_dirty_segments(); meta != nullptr;) {
    SegmentMeta* const next = meta->next_dirty.load(std::memory_order_relaxed);
    bool dirty[kGcCardsPerSegment];
    for (std::size_t c = 0; c < kGcCardsPerSegment; ++c) {
      dirty[c] = meta->cards[c].load(std::memory_order_relaxed) != 0;
      if (dirty[c]) ++scanned;
    }
    // The meta sits at the segment base; recover the object area from the
    // same alignment invariant the barrier's address mask relies on.
    char* const base = reinterpret_cast<char*>(meta);
    char* p = base + kGcSegmentMetaBytes;
    char* const end = base + kGcSegmentBytes;
    while (p < end) {
      auto* h = reinterpret_cast<ObjHeader*>(p);
      const std::size_t sz = h->alloc_bytes;
      if (h->kind != ObjKind::Free && h->is_old() &&
          dirty[static_cast<std::size_t>(p - base) >> kGcCardShift]) {
        trace_refs(*module_, h, push);
      }
      p += sz;
    }
    meta->clear();
    meta = next;
  }
  // Large objects remember stores via a header bit instead of a card.
  for (ObjRef o : large_) {
    const auto st = o->gc_state.load(std::memory_order_relaxed);
    if ((st & ObjHeader::kGcRemembered) == 0) continue;
    if ((st & ObjHeader::kGcOld) != 0) {
      ++scanned;
      trace_refs(*module_, o, push);
    }
    o->gc_state.fetch_and(
        static_cast<std::uint8_t>(~ObjHeader::kGcRemembered),
        std::memory_order_relaxed);
  }
  return scanned;
}

void Heap::sweep_minor_locked(std::size_t& freed, std::size_t& swept,
                              std::size_t& promoted) {
  // Sweep ONLY the regions handed to TLABs this cycle (the logical
  // nursery); clean old segments are never touched. Survivors promote in
  // place (set kGcOld, clear the mark); dead blocks coalesce into free runs
  // for the next refills. Runs never merge across window boundaries — the
  // neighbouring space belongs to the old generation and stays tiled.
  for (const YoungWindow& w : young_windows_) {
    char* p = w.begin;
    char* run_start = nullptr;
    auto close_run = [&](char* run_end) {
      if (run_start == nullptr) return;
      const auto bytes = static_cast<std::size_t>(run_end - run_start);
      write_filler(run_start, bytes);
      free_runs_.push_back({run_start, bytes});
      run_start = nullptr;
    };
    while (p < w.end) {
      auto* h = reinterpret_cast<ObjHeader*>(p);
      const std::size_t sz = h->alloc_bytes;
      if (h->is_marked()) {
        h->gc_state.store(ObjHeader::kGcOld, std::memory_order_relaxed);
        promoted += sz;
        close_run(p);
      } else {
        if (h->kind != ObjKind::Free) {
          ++swept;
          freed += sz;
          --live_objects_;
          live_bytes_ -= sz;
        }
        if (run_start == nullptr) run_start = p;
      }
      p += sz;
    }
    close_run(w.end);
  }
  young_windows_.clear();
  sweep_large_locked(/*minor=*/true, freed, swept, promoted);
  old_bytes_ += promoted;
}

void Heap::sweep_large_locked(bool minor, std::size_t& freed,
                              std::size_t& swept, std::size_t& promoted) {
  // Large objects are swept individually. A minor touches only the young
  // tail (entries appended since the last collection); a major walks all.
  const std::size_t start = minor ? large_young_start_ : 0;
  std::size_t out = start;
  for (std::size_t i = start; i < large_.size(); ++i) {
    ObjRef obj = large_[i];
    if (obj->is_marked()) {
      if (!obj->is_old()) promoted += large_sizes_[i];
      obj->gc_state.store(ObjHeader::kGcOld, std::memory_order_relaxed);
      large_[out] = obj;
      large_sizes_[out] = large_sizes_[i];
      ++out;
    } else {
      freed += large_sizes_[i];
      ++swept;
      if (minor) {
        --live_objects_;
        live_bytes_ -= large_sizes_[i];
      }
      ::operator delete(obj, std::align_val_t{kAllocAlign});
    }
  }
  large_.resize(out);
  large_sizes_.resize(out);
  large_young_start_ = large_.size();
}

void Heap::sweep_segment(Segment& seg, SegmentSweep& out) {
  // One segment's share of a major sweep: walk by header sizes, clear mark
  // bits, promote survivors, coalesce dead blocks (including old fillers)
  // into free runs, and clear the card table (after a full collection every
  // live object is old, so no old->young edge can exist). Runs entirely
  // inside one segment; safe to run from any worker thread.
  char* p = seg.area_begin();
  char* const end = seg.area_end();
  char* run_start = nullptr;
  auto close_run = [&](char* run_end) {
    if (run_start == nullptr) return;
    const auto bytes = static_cast<std::size_t>(run_end - run_start);
    write_filler(run_start, bytes);
    out.runs.push_back({run_start, bytes});
    run_start = nullptr;
  };
  while (p < end) {
    auto* h = reinterpret_cast<ObjHeader*>(p);
    const std::size_t sz = h->alloc_bytes;
    if (h->is_marked()) {
      if (!h->is_old()) out.promoted += sz;
      h->gc_state.store(ObjHeader::kGcOld, std::memory_order_relaxed);
      out.any_live = true;
      ++out.live_objects;
      out.live_bytes += sz;
      close_run(p);
    } else {
      if (h->kind != ObjKind::Free) {
        ++out.swept;
        out.freed += sz;
      }
      if (run_start == nullptr) run_start = p;
    }
    p += sz;
  }
  close_run(end);
  seg.meta()->clear();
}

void Heap::sweep_major_locked(std::size_t& freed, std::size_t& swept,
                              std::size_t& promoted) {
  if (lazy_sweep_ && !segments_.empty()) {
    // Deferred mode: keep the mark bits and let TLAB refills sweep segments
    // on demand (lazy_sweep_one_locked). Live counters stay at their folded
    // (garbage-inclusive) values until the deferred list drains — stats()
    // forces the drain to give an exact census.
    unswept_.clear();
    for (auto& segp : segments_) unswept_.push_back(segp.get());
    free_runs_.clear();
    young_windows_.clear();
    std::size_t lfreed = 0;
    const std::size_t swept_before = swept;
    sweep_large_locked(/*minor=*/false, lfreed, swept, promoted);
    freed += lfreed;
    live_bytes_ -= std::min(live_bytes_, lfreed);
    live_objects_ -= std::min(live_objects_, swept - swept_before);
    old_bytes_ = live_bytes_;
    major_threshold_ = std::max(threshold_ * 4, old_bytes_ * 2);
    return;
  }

  const int workers =
      std::min<int>(gc_threads_, static_cast<int>(segments_.size()));
  std::vector<SegmentSweep> results(segments_.size());
  if (workers > 1) {
    parallel_sweep(workers, results);
  } else {
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      sweep_segment(*segments_[i], results[i]);
    }
  }

  // Serial merge: rebuild the run list, pool fully-dead segments, recompute
  // the live census exactly from what the walk saw.
  live_bytes_ = 0;
  live_objects_ = 0;
  free_runs_.clear();
  young_windows_.clear();
  std::size_t seg_out = 0;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    SegmentSweep& r = results[s];
    freed += r.freed;
    swept += r.swept;
    promoted += r.promoted;
    live_objects_ += r.live_objects;
    live_bytes_ += r.live_bytes;
    if (!r.any_live) {
      if (pool_.size() < kMaxPooledSegments) {
        pool_.push_back(std::move(segments_[s]));
      }
      continue;  // segment leaves the walkable list
    }
    for (const FreeRun& run : r.runs) free_runs_.push_back(run);
    segments_[seg_out++] = std::move(segments_[s]);
  }
  segments_.resize(seg_out);

  sweep_large_locked(/*minor=*/false, freed, swept, promoted);
  for (std::size_t i = 0; i < large_.size(); ++i) {
    ++live_objects_;
    live_bytes_ += large_sizes_[i];
  }
  // Everything that survived a full collection is old now; rescale the
  // major trigger so collection frequency tracks heap growth.
  old_bytes_ = live_bytes_;
  major_threshold_ = std::max(threshold_ * 4, old_bytes_ * 2);
}

void Heap::gc_perform(GcKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t allocated_window =
      bytes_since_gc_.load(std::memory_order_relaxed);

  const std::uint64_t t0 = now_ns();
  std::size_t cards_scanned = 0;
  if (kind == GcKind::Minor) {
    // The nursery is small and card scanning is a linear flag walk; the
    // parallel pool would cost more in wakeup latency than it saves.
    cards_scanned = scan_cards_locked();
    drain_worklist_serial(/*minor=*/true);
  } else {
    // A major traces everything, so pending cards are moot — but the dirty
    // list must be detached and reset NOW, while every listed segment is
    // still alive: the sweep below may pool or free segments, and a stale
    // list entry would dangle into the next minor's scan.
    for (SegmentMeta* meta = take_dirty_segments(); meta != nullptr;) {
      SegmentMeta* const next =
          meta->next_dirty.load(std::memory_order_relaxed);
      meta->clear();
      meta = next;
    }
    const int workers = gc_threads_;
    if (workers > 1 && worklist_.size() > 1) {
      parallel_mark(workers);
    } else {
      drain_worklist_serial(/*minor=*/false);
    }
  }
  const std::uint64_t t1 = now_ns();

  std::size_t freed = 0;
  std::size_t swept = 0;
  std::size_t promoted = 0;
  if (kind == GcKind::Minor) {
    sweep_minor_locked(freed, swept, promoted);
    ++stats_.minor_collections;
  } else {
    sweep_major_locked(freed, swept, promoted);
    ++stats_.major_collections;
  }
  const std::uint64_t t2 = now_ns();

  stats_.swept_objects += swept;
  stats_.promoted_bytes += promoted;
  bytes_since_gc_.store(0, std::memory_order_relaxed);
  ++stats_.collections;
  // Runs during the stop-the-world window; the VM's collect() folds these
  // into the pause event it records when the world resumes.
  telemetry::count(telemetry::Counter::CardsScanned, cards_scanned);
  telemetry::count(telemetry::Counter::PromotedBytes, promoted);
  telemetry::record_gc_sweep(kind == GcKind::Major, allocated_window, freed,
                             swept, segments_.size(), t1 - t0, t2 - t1);
}

// --------------------------------------------------------------------------
// Lazy sweep-on-refill (gated fallback).

bool Heap::lazy_sweep_one_locked() {
  if (unswept_.empty()) return false;
  Segment* seg = unswept_.back();
  unswept_.pop_back();
  SegmentSweep r;
  sweep_segment(*seg, r);
  live_objects_ -= std::min(live_objects_, r.swept);
  live_bytes_ -= std::min(live_bytes_, r.freed);
  stats_.swept_objects += r.swept;
  old_bytes_ -= std::min(old_bytes_, r.freed);
  for (const FreeRun& run : r.runs) free_runs_.push_back(run);
  return true;
}

void Heap::drain_unswept_locked() {
  while (lazy_sweep_one_locked()) {
  }
}

void Heap::set_lazy_sweep(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!on) drain_unswept_locked();
  lazy_sweep_ = on;
}

// --------------------------------------------------------------------------
// GC worker pool. Workers are spawned lazily at the first parallel
// collection, park on pool_cv_ between jobs, and only ever run while the
// world is stopped (the collector thread holds mu_ and drives them). The
// pool mutex/condvar pair provides the happens-before edges between the
// collector and its workers in both directions.

void Heap::worker_loop() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    std::function<void(int)> job;
    int id;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock,
                    [&] { return shutdown_ || job_gen_ != seen_gen; });
      if (shutdown_) return;
      seen_gen = job_gen_;
      // Claim a helper slot; a pool that grew for an earlier, wider job can
      // hold more parked workers than this job wants — latecomers go back
      // to sleep so the job runs with exactly the requested parallelism.
      if (job_slots_ == 0) continue;
      id = job_slots_--;  // 1-based worker id; 0 is the collector
      job = job_;
    }
    job(id);
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      ++job_done_;
    }
    done_cv_.notify_one();
  }
}

void Heap::run_job(int workers, const std::function<void(int)>& fn) {
  const int helpers = workers - 1;  // the collector itself is worker 0
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    while (static_cast<int>(gc_workers_.size()) < helpers) {
      gc_workers_.emplace_back([this] { worker_loop(); });
    }
    job_ = fn;
    job_slots_ = helpers;
    job_done_ = 0;
    ++job_gen_;
  }
  pool_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(pool_mu_);
  done_cv_.wait(lock, [&] { return job_done_ == helpers; });
  job_ = nullptr;
}

void Heap::parallel_mark(int workers) {
  // Seed the shared pool with chunks of the root worklist, then let each
  // worker drain a private stack, donating a chunk back whenever the stack
  // grows past the spill mark (work sharing, the flood-control variant of
  // work stealing). The spill mark alone is not enough: pointer-chasing
  // graphs (linked lists, trees of small nodes) keep the private stack at a
  // handful of entries, so a worker that got the only seed chunk would mark
  // the whole heap serially. Two countermeasures: the seed is split into
  // ~4 chunks per worker so everybody starts busy, and a worker donates
  // half its stack whenever the shared pool runs dry (tracked by a relaxed
  // atomic hint so the check costs nothing on the hot path). Termination: a
  // worker finding the pool empty goes idle; when the last active worker
  // goes idle the mark is complete.
  mark_chunks_.clear();
  const std::size_t seed_chunk = std::max<std::size_t>(
      1, std::min(kMarkChunk, worklist_.size() /
                                  (static_cast<std::size_t>(workers) * 4)));
  for (std::size_t i = 0; i < worklist_.size(); i += seed_chunk) {
    const std::size_t n = std::min(seed_chunk, worklist_.size() - i);
    mark_chunks_.emplace_back(worklist_.begin() + static_cast<std::ptrdiff_t>(i),
                              worklist_.begin() +
                                  static_cast<std::ptrdiff_t>(i + n));
  }
  mark_pool_size_.store(static_cast<int>(mark_chunks_.size()),
                        std::memory_order_relaxed);
  worklist_hwm_ = std::max(worklist_hwm_, worklist_.size());
  worklist_.clear();
  mark_active_ = workers;

  run_job(workers, [this](int) {
    std::vector<ObjRef> local;
    auto donate = [&] {
      const std::size_t n = std::min(kMarkChunk, local.size() / 2);
      std::vector<ObjRef> donation(local.end() - static_cast<std::ptrdiff_t>(n),
                                   local.end());
      local.resize(local.size() - n);
      {
        std::lock_guard<std::mutex> lock(mark_mu_);
        mark_chunks_.push_back(std::move(donation));
        mark_pool_size_.fetch_add(1, std::memory_order_relaxed);
      }
      mark_cv_.notify_one();
    };
    auto push = [&](ObjRef child) {
      // Claim with an atomic fetch_or: two workers reaching the same child
      // race only on who pushes it, never on tracing it twice.
      if (child == nullptr || !child->try_mark()) return;
      local.push_back(child);
      if (local.size() >= kMarkSpill ||
          (local.size() >= kMarkDonateMin &&
           mark_pool_size_.load(std::memory_order_relaxed) == 0)) {
        donate();
      }
    };
    std::unique_lock<std::mutex> lock(mark_mu_);
    for (;;) {
      if (!mark_chunks_.empty()) {
        std::vector<ObjRef> chunk = std::move(mark_chunks_.front());
        mark_chunks_.pop_front();
        mark_pool_size_.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
        for (ObjRef obj : chunk) trace_refs(*module_, obj, push);
        while (!local.empty()) {
          ObjRef obj = local.back();
          local.pop_back();
          trace_refs(*module_, obj, push);
        }
        lock.lock();
        continue;
      }
      if (--mark_active_ == 0) {
        mark_cv_.notify_all();
        return;
      }
      mark_cv_.wait(lock, [&] {
        return !mark_chunks_.empty() || mark_active_ == 0;
      });
      if (mark_active_ == 0 && mark_chunks_.empty()) return;
      ++mark_active_;
    }
  });
}

void Heap::parallel_sweep(int workers, std::vector<SegmentSweep>& results) {
  // Segments are independently walkable; workers claim indices with one
  // atomic increment and write only their claimed result slots, so the
  // merge needs no locks at all.
  std::atomic<std::size_t> next{0};
  run_job(workers, [this, &next, &results](int) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= segments_.size()) return;
      sweep_segment(*segments_[i], results[i]);
    }
  });
}

void Heap::set_gc_threads(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  gc_threads_ = std::clamp(n, 1, 16);
}

int Heap::gc_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gc_threads_;
}

// --------------------------------------------------------------------------

HeapStats Heap::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  drain_unswept_locked();  // lazy mode defers the census; settle it now
  HeapStats s = stats_;
  s.live_objects = live_objects_;
  s.live_bytes = live_bytes_;
  s.old_bytes = old_bytes_;
  // Read (without resetting) the registered TLABs' unfolded counts. Exact
  // when the owning threads are quiescent/joined; a thread racing its own
  // bump path may be missed, like the telemetry sinks.
  for (const Tlab* t : tlabs_) {
    s.total_allocations += t->pending_allocs_;
    s.live_objects += t->pending_allocs_;
    s.live_bytes += t->pending_bytes_;
  }
  s.segments = segments_.size();
  s.pooled_segments = pool_.size();
  s.large_objects = large_.size();
  return s;
}

std::size_t Heap::bytes_since_gc() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = bytes_since_gc_.load(std::memory_order_relaxed);
  for (const Tlab* t : tlabs_) n += t->pending_bytes_;
  return n;
}

void Heap::set_threshold(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ = bytes;
  major_threshold_ = std::max(bytes * 4, old_bytes_ * 2);
}

void Heap::request_gc() {
  if (gc_requester_) gc_requester_(GcKind::Major);
}

void Heap::pretouch(ObjRef obj) {
  if (obj == nullptr || obj->is_old()) return;
  if (obj->kind != ObjKind::Array && obj->kind != ObjKind::Matrix2) return;
  if (obj->elem == ValType::Ref) return;  // would need old->young tracking
  if (obj->alloc_bytes != 0) return;      // segment-resident: sweep promotes
  std::lock_guard<std::mutex> lock(mu_);
  // Move the entry out of the large-object nursery tail into the old prefix
  // so minor sweeps (which only walk the tail) never visit it again.
  for (std::size_t i = large_young_start_; i < large_.size(); ++i) {
    if (large_[i] != obj) continue;
    const std::size_t sz = large_sizes_[i];
    std::swap(large_[i], large_[large_young_start_]);
    std::swap(large_sizes_[i], large_sizes_[large_young_start_]);
    obj->gc_state.store(ObjHeader::kGcOld, std::memory_order_relaxed);
    ++large_young_start_;
    old_bytes_ += sz;
    return;
  }
}

std::string string_value(ObjRef s) {
  if (s == nullptr || s->kind != ObjKind::String) return {};
  return std::string(s->chars(), static_cast<std::size_t>(s->length));
}

}  // namespace hpcnet::vm

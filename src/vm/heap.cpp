#include "vm/heap.hpp"

#include <cstdlib>
#include <new>
#include <stdexcept>

#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm {

std::size_t elem_size(ValType t) {
  switch (t) {
    case ValType::I32: return 4;
    case ValType::I64: return 8;
    case ValType::F32: return 4;
    case ValType::F64: return 8;
    case ValType::Ref: return sizeof(ObjRef);
    case ValType::None: break;
  }
  return 8;
}

Heap::Heap(Module* module, std::size_t gc_threshold_bytes)
    : module_(module), threshold_(gc_threshold_bytes) {}

Heap::~Heap() {
  for (ObjRef o : objects_) ::operator delete(o, std::align_val_t{alignof(Slot)});
}

ObjRef Heap::alloc_raw(std::size_t payload_bytes) {
  // Trigger a collection outside the allocation lock so the GC can take it.
  if (bytes_since_gc_ > threshold_ && gc_requester_) {
    gc_requester_();
  }
  const std::size_t total = sizeof(ObjHeader) + payload_bytes;
  void* mem = ::operator new(total, std::align_val_t{alignof(Slot)});
  std::memset(mem, 0, total);
  auto* obj = new (mem) ObjHeader();
  {
    std::lock_guard<std::mutex> lock(mu_);
    objects_.push_back(obj);
    sizes_.push_back(total);
    bytes_since_gc_ += total;
    live_bytes_ += total;
    ++stats_.total_allocations;
  }
  telemetry::record_allocation(total);
  return obj;
}

ObjRef Heap::alloc_instance(std::int32_t class_id) {
  const auto& cls = module_->klass(class_id);
  ObjRef obj = alloc_raw(cls.fields.size() * sizeof(Slot));
  obj->kind = ObjKind::Instance;
  obj->klass = class_id;
  obj->length = static_cast<std::int32_t>(cls.fields.size());
  return obj;
}

ObjRef Heap::alloc_array(ValType elem, std::int32_t length) {
  if (length < 0) throw std::invalid_argument("negative array length");
  ObjRef obj = alloc_raw(static_cast<std::size_t>(length) * elem_size(elem));
  obj->kind = ObjKind::Array;
  obj->elem = elem;
  obj->length = length;
  return obj;
}

ObjRef Heap::alloc_matrix2(ValType elem, std::int32_t rows,
                           std::int32_t cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative matrix dim");
  ObjRef obj = alloc_raw(static_cast<std::size_t>(rows) *
                         static_cast<std::size_t>(cols) * elem_size(elem));
  obj->kind = ObjKind::Matrix2;
  obj->elem = elem;
  obj->length = rows;
  obj->cols = cols;
  return obj;
}

ObjRef Heap::alloc_box(ValType type, Slot value) {
  ObjRef obj = alloc_raw(sizeof(Slot));
  obj->kind = ObjKind::Boxed;
  obj->elem = type;
  obj->length = 1;
  obj->fields()[0] = value;
  return obj;
}

ObjRef Heap::alloc_string(const std::string& s) {
  ObjRef obj = alloc_raw(s.size());
  obj->kind = ObjKind::String;
  obj->length = static_cast<std::int32_t>(s.size());
  std::memcpy(obj->chars(), s.data(), s.size());
  return obj;
}

void Heap::mark(ObjRef root) {
  if (root == nullptr || root->marked) return;
  std::vector<ObjRef> worklist;
  root->marked = true;
  worklist.push_back(root);
  while (!worklist.empty()) {
    ObjRef obj = worklist.back();
    worklist.pop_back();
    trace(obj, worklist);
  }
}

void Heap::trace(ObjRef obj, std::vector<ObjRef>& worklist) {
  auto push = [&](ObjRef child) {
    if (child != nullptr && !child->marked) {
      child->marked = true;
      worklist.push_back(child);
    }
  };
  switch (obj->kind) {
    case ObjKind::Instance: {
      const auto& cls = module_->klass(obj->klass);
      Slot* f = obj->fields();
      for (std::size_t i = 0; i < cls.fields.size(); ++i) {
        if (cls.fields[i].type == ValType::Ref) push(f[i].ref);
      }
      break;
    }
    case ObjKind::Array:
      if (obj->elem == ValType::Ref) {
        ObjRef* data = obj->ref_data();
        for (std::int32_t i = 0; i < obj->length; ++i) push(data[i]);
      }
      break;
    case ObjKind::Matrix2:
      if (obj->elem == ValType::Ref) {
        ObjRef* data = obj->ref_data();
        const std::int64_t n =
            static_cast<std::int64_t>(obj->length) * obj->cols;
        for (std::int64_t i = 0; i < n; ++i) push(data[i]);
      }
      break;
    case ObjKind::Boxed:
      if (obj->elem == ValType::Ref) push(obj->fields()[0].ref);
      break;
    case ObjKind::String:
      break;
  }
}

void Heap::sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t allocated_window = bytes_since_gc_;
  std::size_t freed_bytes = 0;
  std::size_t swept = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    ObjRef obj = objects_[i];
    if (obj->marked) {
      obj->marked = false;
      objects_[out] = obj;
      sizes_[out] = sizes_[i];
      ++out;
    } else {
      live_bytes_ -= sizes_[i];
      freed_bytes += sizes_[i];
      ++swept;
      ++stats_.swept_objects;
      ::operator delete(obj, std::align_val_t{alignof(Slot)});
    }
  }
  objects_.resize(out);
  sizes_.resize(out);
  bytes_since_gc_ = 0;
  ++stats_.collections;
  // Runs during the stop-the-world window; the VM's collect() folds these
  // into the pause event it records when the world resumes.
  telemetry::record_gc_sweep(allocated_window, freed_bytes, swept);
}

HeapStats Heap::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  HeapStats s = stats_;
  s.live_objects = objects_.size();
  s.live_bytes = live_bytes_;
  return s;
}

void Heap::request_gc() {
  if (gc_requester_) gc_requester_();
}

std::string string_value(ObjRef s) {
  if (s == nullptr || s->kind != ObjKind::String) return {};
  return std::string(s->chars(), static_cast<std::size_t>(s->length));
}

}  // namespace hpcnet::vm

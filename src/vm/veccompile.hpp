// Vector lowering pass (DESIGN.md §12): recognizes innermost counted loops
// with map/daxpy, reduction, and SOR-stencil bodies in pre-compaction RegIR
// and plants a VECLOOP superinstruction in each loop's preheader. The scalar
// loop is always retained as the slow path — VECLOOP is a guarded fast path,
// never a replacement — so deopt, OSR and exception semantics are untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/regir.hpp"

namespace hpcnet::vm::regir {

/// Borrowed views of the register compiler's pre-compaction state. Branch
/// `d` fields still hold IL pcs; `il_start` maps IL pc -> code index and is
/// shifted by insertions exactly like the LICM pass does.
struct VecLowerInput {
  std::vector<RInstr>* code = nullptr;
  std::vector<std::int32_t>* il_start = nullptr;
  const std::vector<bool>* labels = nullptr;  // IL pcs that are branch targets
  const MethodDef* method = nullptr;          // handler table (region checks)
  RCode* rc = nullptr;  // reg_types / args_pool / slot_regs / vec_loops
};

/// Runs the recognizer to fixpoint; returns the number of loops lowered.
int lower_vector_loops(const VecLowerInput& in);

}  // namespace hpcnet::vm::regir

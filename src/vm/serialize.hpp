// Metadata-driven binary serialization of managed object graphs — the
// substrate for the JGF "Serial" micro-benchmark (writing and reading a
// linked structure of objects). Handles arbitrary graphs including cycles
// via a back-reference table, like the CLI BinaryFormatter the paper's port
// exercised.
//
// The wire format is a private, versioned byte stream:
//   [u32 magic][u32 object count][records...]
// Each record: [u8 kind][type info][payload]; object references inside
// payloads are encoded as record indices (-1 = null).
//
// The same module also carries the snapshot wire format (DESIGN.md §13): a
// separately-tagged archive section that round-trips CodeArchives — compiled
// regir::RCode bodies (instructions, constant pools, deopt and vector-loop
// side tables, the owned IL body) plus per-method tier/hotness records:
//   [u32 'HPCA'][u32 version][u64 fnv1a checksum of the remainder]
//   [u32 narchives][per archive: profile, records...]
// Deserialization is defensive end to end: truncation, bad magic/version,
// checksum mismatches, out-of-range ids/registers/branch targets and
// side-table length mismatches all throw SerializeError — and restored IL
// bodies are re-verified against the local module rather than trusted, so a
// hostile archive can degrade to a cold miss but never to UB.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "vm/archive.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

class Module;
class VirtualMachine;
struct VMContext;

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes the graph rooted at `root` to a byte buffer.
std::vector<char> serialize_graph(VirtualMachine& vm, ObjRef root);

/// Reconstructs a graph from serialize_graph output; returns the new root.
/// Newly created objects are kept GC-reachable throughout. Throws
/// SerializeError on malformed input.
ObjRef deserialize_graph(VirtualMachine& vm, VMContext& ctx, const char* data,
                         std::size_t size);

/// Convenience wrappers over String blobs (what the intrinsics expose).
/// The blob is allocated through `ctx`'s TLAB so a metered job's serialized
/// output is charged to its tenant budget like any other allocation.
ObjRef serialize_to_string(VirtualMachine& vm, VMContext& ctx, ObjRef root);
ObjRef deserialize_from_string(VirtualMachine& vm, VMContext& ctx,
                               ObjRef blob);

/// File round-trip used by the Serial benchmark variant that includes I/O,
/// as the JGF original writes to and reads from a file.
void serialize_to_file(VirtualMachine& vm, ObjRef root,
                       const std::string& path);
ObjRef deserialize_from_file(VirtualMachine& vm, VMContext& ctx,
                             const std::string& path);

// --- Code archives (snapshot warm start) ----------------------------------

/// Serializes one or more CodeArchives (one per engine profile) into the
/// 'HPCA' archive stream described above.
std::vector<char> serialize_archives(
    const std::vector<std::shared_ptr<const CodeArchive>>& archives);

/// Reconstructs CodeArchives from serialize_archives output. Structural
/// damage throws SerializeError. Each restored compiled body is re-verified
/// against `module` (verify_body) — a body whose IL does not verify locally
/// is dropped to a counters-only record (tier clamped below Optimizing), so
/// stale or foreign archives degrade to cold compiles, never to bad code.
std::vector<std::shared_ptr<const CodeArchive>> deserialize_archives(
    Module& module, const char* data, std::size_t size);

/// Captures every warmed engine-profile cache of `vm` (code_cache_keys()
/// minus the reserved "<verify>" cache) and writes one archive stream to
/// `path`. The VM must be quiesced (see capture_archive).
void save_snapshot(VirtualMachine& vm, const std::string& path);

/// Reads an archive stream from `path` and attaches every archive in it to
/// `vm`'s same-named caches. Returns the aggregate restore/miss counts.
/// Throws SerializeError on malformed input or unreadable files.
ArchiveStats load_snapshot(VirtualMachine& vm, const std::string& path);

}  // namespace hpcnet::vm

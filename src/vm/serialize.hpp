// Metadata-driven binary serialization of managed object graphs — the
// substrate for the JGF "Serial" micro-benchmark (writing and reading a
// linked structure of objects). Handles arbitrary graphs including cycles
// via a back-reference table, like the CLI BinaryFormatter the paper's port
// exercised.
//
// The wire format is a private, versioned byte stream:
//   [u32 magic][u32 object count][records...]
// Each record: [u8 kind][type info][payload]; object references inside
// payloads are encoded as record indices (-1 = null).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace hpcnet::vm {

class VirtualMachine;
struct VMContext;

class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes the graph rooted at `root` to a byte buffer.
std::vector<char> serialize_graph(VirtualMachine& vm, ObjRef root);

/// Reconstructs a graph from serialize_graph output; returns the new root.
/// Newly created objects are kept GC-reachable throughout. Throws
/// SerializeError on malformed input.
ObjRef deserialize_graph(VirtualMachine& vm, VMContext& ctx, const char* data,
                         std::size_t size);

/// Convenience wrappers over String blobs (what the intrinsics expose).
/// The blob is allocated through `ctx`'s TLAB so a metered job's serialized
/// output is charged to its tenant budget like any other allocation.
ObjRef serialize_to_string(VirtualMachine& vm, VMContext& ctx, ObjRef root);
ObjRef deserialize_from_string(VirtualMachine& vm, VMContext& ctx,
                               ObjRef blob);

/// File round-trip used by the Serial benchmark variant that includes I/O,
/// as the JGF original writes to and reads from a file.
void serialize_to_file(VirtualMachine& vm, ObjRef root,
                       const std::string& path);
ObjRef deserialize_from_file(VirtualMachine& vm, VMContext& ctx,
                             const std::string& path);

}  // namespace hpcnet::vm

// Object monitors: the System.Threading.Monitor semantics behind the CLI
// `lock` statement, synchronized-method emulation, and the Table-2/3
// synchronization benchmarks. Every object can be locked; the lock state
// lives in a side table indexed by the header's lock_id (allocated on first
// lock, like lock-word inflation).
//
// All blocking waits run inside a GC-safe region so a parked thread never
// stalls a collection.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "vm/value.hpp"

namespace hpcnet::vm {

class VirtualMachine;
struct VMContext;

class MonitorTable {
 public:
  explicit MonitorTable(VirtualMachine& vm) : vm_(vm) {}

  /// Blocks until the monitor is owned by the calling thread (recursive).
  void enter(VMContext& ctx, ObjRef obj);
  /// Throws (managed SynchronizationLockException analogue -> returns false)
  /// if the caller does not own the monitor.
  bool exit(VMContext& ctx, ObjRef obj);
  /// Releases the monitor and waits for a pulse; reacquires before returning.
  /// Returns false if the caller does not own the monitor.
  bool wait(VMContext& ctx, ObjRef obj);
  bool pulse(VMContext& ctx, ObjRef obj);
  bool pulse_all(VMContext& ctx, ObjRef obj);

  /// Number of inflated monitors (tests).
  std::size_t inflated() const;

 private:
  struct Entry {
    std::mutex m;
    std::condition_variable acquire_cv;  // waiting to own
    std::condition_variable wait_cv;     // Monitor.Wait queue
    std::uint32_t owner = 0;             // managed thread id, 0 = free
    int count = 0;
  };

  Entry& entry_for(ObjRef obj);

  VirtualMachine& vm_;
  mutable std::mutex table_mu_;
  std::deque<Entry> entries_;  // deque: stable addresses
};

}  // namespace hpcnet::vm

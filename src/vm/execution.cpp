#include "vm/execution.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "support/timer.hpp"
#include "vm/codecache.hpp"
#include "vm/engines.hpp"
#include "vm/monitor.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm {

// ---------------------------------------------------------------------------
// Profiles (DESIGN.md §5).

namespace profiles {

EngineProfile clr11() {
  EngineProfile p;
  p.name = "clr11";
  p.tier = Tier::Optimizing;
  p.flags.redundant_const_store = true;  // paper Table 6: spilled divisor
  p.flags.mul_imm_fusion = true;
  p.flags.div_imm_fusion = false;
  p.flags.enregister_limit = 64;  // paper §5
  p.flags.fast_multidim = true;
  p.flags.fast_math = true;
  p.flags.cheap_exceptions = false;
  // The commercial leaders run the full classic pass set (paper §5: the
  // CLR and IBM JITs eliminate the most operations from the hot paths).
  p.flags.inline_calls = true;
  p.flags.inline_max_il = 64;
  p.flags.cse = true;
  p.flags.licm = true;
  return p;
}

EngineProfile ibm131() {
  EngineProfile p;
  p.name = "ibm131";
  p.tier = Tier::Optimizing;
  p.flags.div_imm_fusion = true;  // paper Table 6: divisor kept immediate
  p.flags.mul_imm_fusion = false;
  p.flags.fast_multidim = false;  // JVM lacks true rank-2 arrays
  p.flags.fast_math = false;      // paper: CLR Math library faster
  p.flags.cheap_exceptions = true;
  p.flags.inline_calls = true;  // the IBM JIT inlined aggressively
  p.flags.inline_max_il = 64;
  p.flags.cse = true;
  p.flags.licm = true;
  return p;
}

EngineProfile sun14() {
  EngineProfile p;
  p.name = "sun14";
  p.tier = Tier::Optimizing;
  p.flags.fuse_cmp_branch = false;  // fewer passes than the leaders
  p.flags.imm_operands = true;
  p.flags.mul_imm_fusion = false;
  p.flags.fast_multidim = false;
  p.flags.fast_math = false;
  p.flags.cheap_exceptions = true;
  // HotSpot client compiler: local value numbering and code motion, but
  // conservative inlining (modelled here as none).
  p.flags.cse = true;
  p.flags.licm = true;
  return p;
}

EngineProfile bea81() {
  EngineProfile p;
  p.name = "bea81";
  p.tier = Tier::Optimizing;
  p.flags.bounds_check_elim = false;
  p.flags.mul_imm_fusion = false;
  p.flags.fast_multidim = false;
  p.flags.fast_math = false;
  p.flags.cheap_exceptions = true;
  // JRockit: strong inliner and value numbering, but no loop-oriented
  // passes in this mix (it also skips BCE above).
  p.flags.inline_calls = true;
  p.flags.cse = true;
  return p;
}

EngineProfile jsharp11() {
  EngineProfile p = clr11();
  p.name = "jsharp11";
  // The J# front end emits CLR-hostile IL; model as the CLR pipeline with
  // fewer fusion opportunities.
  p.flags.fuse_cmp_branch = false;
  p.flags.mul_imm_fusion = false;
  return p;
}

EngineProfile mono023() {
  EngineProfile p;
  p.name = "mono023";
  p.tier = Tier::Baseline;
  return p;
}

EngineProfile rotor10() {
  EngineProfile p;
  p.name = "rotor10";
  p.tier = Tier::Interp;
  return p;
}

std::vector<EngineProfile> all() {
  return {ibm131(), clr11(),  bea81(),  jsharp11(),
          sun14(),  mono023(), rotor10()};
}

EngineProfile tiered(EngineProfile base) {
  base.tiering.mode = TierMode::Tiered;
  switch (base.tier) {
    case Tier::Interp:
      // Rotor never JITted: tiered mode degenerates to the interpreter.
      base.tiering.max_tier = Tier::Interp;
      break;
    case Tier::Baseline:
      // Mono 0.23's JIT is itself the baseline; promote eagerly but never
      // into the register-IR tier it didn't have.
      base.tiering.max_tier = Tier::Baseline;
      base.tiering.baseline_threshold = 4;
      break;
    case Tier::Optimizing:
      base.tiering.max_tier = Tier::Optimizing;
      break;
  }
  base.name += ".tiered";
  return base;
}

EngineProfile vec(EngineProfile base) {
  // The recognizer runs inside the optimizing tier's pass pipeline; BCE is
  // forced on because its loop analysis (and the unchecked element forms it
  // produces) are what the recognizer consumes.
  base.flags.vectorize = true;
  base.flags.bounds_check_elim = true;
  base.name += ".vec";
  return base;
}

EngineProfile by_name(const std::string& name) {
  for (auto& p : all()) {
    if (p.name == name) return p;
  }
  // "<base>.tiered" selects the hotness-promoting pipeline over that base;
  // "<base>.vec" adds the vector tier. Suffixes compose left to right.
  constexpr std::string_view kTiered = ".tiered";
  if (name.size() > kTiered.size() &&
      name.compare(name.size() - kTiered.size(), kTiered.size(), kTiered) ==
          0) {
    return tiered(by_name(name.substr(0, name.size() - kTiered.size())));
  }
  constexpr std::string_view kVec = ".vec";
  if (name.size() > kVec.size() &&
      name.compare(name.size() - kVec.size(), kVec.size(), kVec) == 0) {
    return vec(by_name(name.substr(0, name.size() - kVec.size())));
  }
  throw std::invalid_argument("unknown engine profile: " + name);
}

}  // namespace profiles

// ---------------------------------------------------------------------------
// FrameArena.

void* FrameArena::alloc(std::size_t bytes) {
  bytes = (bytes + alignof(Slot) - 1) & ~(alignof(Slot) - 1);
  if (pos_ + bytes > size_) {
    throw std::runtime_error("managed stack overflow");
  }
  void* p = buf_.get() + pos_;
  pos_ += bytes;
  std::memset(p, 0, bytes);
  return p;
}

// ---------------------------------------------------------------------------
// Engine::invoke.

Slot Engine::invoke(VMContext& ctx, std::int32_t method_id,
                    std::span<const Slot> args) {
  VirtualMachine& vm = *ctx.vm;
  const MethodDef& m = vm.module().method(method_id);
  // Verification happens at frame entry inside the tier backends (through
  // the VM-shared verify cache), not here: this path is reachable from many
  // threads and an unsynchronized MethodDef check would race.
  if (args.size() != m.sig.params.size()) {
    throw std::invalid_argument("invoke " + m.name + ": argument count");
  }
  // Copy args into a frame-arena block the engine will adopt.
  const auto mark = ctx.arena.mark();
  Slot* argbuf = nullptr;
  if (!args.empty()) {
    argbuf = static_cast<Slot*>(ctx.arena.alloc(args.size() * sizeof(Slot)));
    std::copy(args.begin(), args.end(), argbuf);
  }
  ctx.pending_exception = nullptr;
  Engine* prev_engine = ctx.engine;
  ctx.engine = this;  // managed Thread.Start spawns onto the running engine
  const Slot result = do_invoke(ctx, m, argbuf);
  ctx.engine = prev_engine;
  ctx.arena.release(mark);
  if (ctx.pending_exception != nullptr) {
    ObjRef exc = ctx.pending_exception;
    ctx.pending_exception = nullptr;
    auto [cls, msg] = vm.describe_exception(exc);
    throw ManagedException(cls, msg);
  }
  return result;
}

// make_engine lives in tiered.cpp next to the TieredEngine it constructs.

// ---------------------------------------------------------------------------
// VirtualMachine.

VirtualMachine::VirtualMachine() : heap_(&module_) {
  monitors_ = std::make_unique<MonitorTable>(*this);
  thread_class_ =
      module_.define_class("System.Threading.Thread", {{"id", ValType::I32}});
  heap_.set_gc_requester([this](GcKind kind) { collect(kind); });
}

CodeCache& VirtualMachine::code_cache(const std::string& key) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  auto& slot = caches_[key];
  if (!slot) slot = std::make_unique<CodeCache>();
  return *slot;
}

std::vector<std::string> VirtualMachine::code_cache_keys() const {
  std::lock_guard<std::mutex> lock(caches_mu_);
  std::vector<std::string> keys;
  keys.reserve(caches_.size());
  for (const auto& [key, cache] : caches_) keys.push_back(key);
  return keys;  // std::map iteration order: already sorted
}

VirtualMachine::~VirtualMachine() {
  // Join any managed threads that were never joined so they don't outlive
  // the VM state they reference.
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& t : threads_) {
      if (t->thread.joinable()) t->thread.join();
    }
  }
  // Detach the lazily-attached host-thread context so its TLAB is
  // unregistered before the heap is torn down.
  if (main_ctx_) {
    detach_thread(*main_ctx_);
    main_ctx_.reset();
  }
}

void VirtualMachine::attach_locked(VMContext& ctx,
                                   std::unique_lock<std::mutex>& lock) {
  // A new thread may not start running while a collection is in progress.
  resume_cv_.wait(lock, [&] { return !stw_requested_.load(); });
  ctx.thread_id = next_thread_id_++;
  ctx.os_id = std::this_thread::get_id();
  contexts_.push_back(&ctx);
  ++num_running_;
}

bool VirtualMachine::calling_thread_attached_locked() const {
  const auto me = std::this_thread::get_id();
  for (const VMContext* c : contexts_) {
    if (c->os_id == me) return true;
  }
  return false;
}

std::unique_ptr<VMContext> VirtualMachine::attach_thread(Engine* engine) {
  auto ctx = std::make_unique<VMContext>();
  ctx->vm = this;
  ctx->engine = engine;
  {
    std::unique_lock<std::mutex> lock(park_mu_);
    attach_locked(*ctx, lock);
  }
  // Registered after the attach handshake: the thread now counts as running,
  // so no collection can complete (and sweep the TLAB list) concurrently.
  heap_.register_tlab(ctx->tlab);
  telemetry::on_thread_attach(ctx->thread_id);
  return ctx;
}

void VirtualMachine::detach_thread(VMContext& ctx) {
  heap_.unregister_tlab(ctx.tlab);
  telemetry::on_thread_detach(ctx.thread_id);
  std::unique_lock<std::mutex> lock(park_mu_);
  contexts_.erase(std::remove(contexts_.begin(), contexts_.end(), &ctx),
                  contexts_.end());
  --num_running_;
  park_cv_.notify_all();
}

VMContext& VirtualMachine::main_context() {
  std::lock_guard<std::mutex> g(main_ctx_mu_);
  if (!main_ctx_) {
    main_ctx_ = attach_thread(nullptr);
  }
  return *main_ctx_;
}

void VirtualMachine::safepoint_park(VMContext& ctx) {
  std::unique_lock<std::mutex> lock(park_mu_);
  if (!stw_requested_.load()) return;
  const std::int64_t stall_begin =
      telemetry::enabled() ? support::now_ns() : 0;
  --num_running_;
  park_cv_.notify_all();
  resume_cv_.wait(lock, [&] { return !stw_requested_.load(); });
  ++num_running_;
  if (stall_begin != 0) {
    telemetry::record_safepoint_stall(support::now_ns() - stall_begin);
  }
  (void)ctx;
}

void VirtualMachine::enter_safe_region(VMContext& ctx) {
  (void)ctx;
  std::lock_guard<std::mutex> lock(park_mu_);
  --num_running_;
  park_cv_.notify_all();
}

void VirtualMachine::leave_safe_region(VMContext& ctx) {
  (void)ctx;
  std::unique_lock<std::mutex> lock(park_mu_);
  resume_cv_.wait(lock, [&] { return !stw_requested_.load(); });
  ++num_running_;
}

void VirtualMachine::collect(GcKind kind) {
  std::unique_lock<std::mutex> world(world_mu_, std::try_to_lock);
  if (!world.owns_lock()) {
    // Another thread is already collecting. Blocking on world_mu_ here would
    // deadlock the rendezvous: this thread still counts as running, so the
    // winner's wait for num_running_ == 0 could never finish. Park like any
    // other mutator until the world resumes; the winner's sweep has reset
    // the allocation budget, so there is nothing left to collect.
    std::unique_lock<std::mutex> lock(park_mu_);
    if (!stw_requested_.load()) return;
    if (calling_thread_attached_locked()) {
      --num_running_;
      park_cv_.notify_all();
      resume_cv_.wait(lock, [&] { return !stw_requested_.load(); });
      ++num_running_;
    } else {
      resume_cv_.wait(lock, [&] { return !stw_requested_.load(); });
    }
    return;
  }
  const std::int64_t pause_begin =
      telemetry::enabled() ? support::now_ns() : 0;
  bool attached;
  {
    std::unique_lock<std::mutex> lock(park_mu_);
    attached = calling_thread_attached_locked();
    stw_requested_.store(true);
    if (attached) --num_running_;  // the collecting thread counts as parked
    park_cv_.wait(lock, [&] { return num_running_ == 0; });
  }
  heap_.gc_prepare(kind);
  mark_roots();
  heap_.gc_perform(kind);
  gc_count_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    stw_requested_.store(false);
    if (attached) ++num_running_;
  }
  resume_cv_.notify_all();
  if (pause_begin != 0) {
    telemetry::record_gc_pause(kind == GcKind::Major, pause_begin,
                               support::now_ns());
  }
}

void VirtualMachine::mark_roots() {
  // The world is stopped: every mutator is parked or in a safe region, so
  // frame chains and registries are stable.
  struct Visitor {
    Heap* heap;
    static void visit(ObjRef obj, void* arg) {
      static_cast<Visitor*>(arg)->heap->mark(obj);
    }
  } v{&heap_};

  for (VMContext* ctx : contexts_) {
    if (ctx->pending_exception != nullptr) heap_.mark(ctx->pending_exception);
    for (GcFrame* f = ctx->top_frame; f != nullptr; f = f->parent) {
      f->enumerate(f, &Visitor::visit, &v);
    }
  }
  module_.for_each_static_ref([&](ObjRef r) { heap_.mark(r); });
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    for (ObjRef r : pinned_) heap_.mark(r);
  }
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& t : threads_) {
      if (t->arg != nullptr) heap_.mark(t->arg);
      if (t->handle != nullptr) heap_.mark(t->handle);
    }
  }
}

ObjRef VirtualMachine::make_exception(VMContext& ctx, std::int32_t class_id,
                                      const std::string& message) {
  // Kill-path exceptions (FuelExhausted, OutOfMemory) must construct even
  // when the thrower's tenant budget is dry, so a refused charge falls back
  // to the heap-shared TLAB, which is never metered. This unmetered reserve
  // is bounded: a handful of small objects per kill.
  ObjRef msg = heap_.alloc_string(message, &ctx.tlab);
  if (msg == nullptr) msg = heap_.alloc_string(message, nullptr);
  Pinned pin(*this, msg);
  ObjRef exc = heap_.alloc_instance(class_id, &ctx.tlab);
  if (exc == nullptr) exc = heap_.alloc_instance(class_id, nullptr);
  exc->fields()[0] = Slot::from_ref(msg);  // System.Exception.message
  return exc;
}

void VirtualMachine::throw_exception(VMContext& ctx, std::int32_t class_id,
                                     const std::string& message) {
  ctx.pending_exception = make_exception(ctx, class_id, message);
}

std::pair<std::string, std::string> VirtualMachine::describe_exception(
    ObjRef exc) {
  if (exc == nullptr) return {"<null>", ""};
  std::string cls = exc->kind == ObjKind::Instance
                        ? module_.klass(exc->klass).name
                        : "<non-exception>";
  std::string msg;
  if (exc->kind == ObjKind::Instance &&
      module_.is_subclass(exc->klass, module_.exception_class())) {
    msg = string_value(exc->fields()[0].ref);
  }
  return {cls, msg};
}

void VirtualMachine::pin(ObjRef obj) {
  std::lock_guard<std::mutex> lock(pins_mu_);
  pinned_.push_back(obj);
}

void VirtualMachine::unpin(ObjRef obj) {
  std::lock_guard<std::mutex> lock(pins_mu_);
  auto it = std::find(pinned_.rbegin(), pinned_.rend(), obj);
  if (it != pinned_.rend()) pinned_.erase(std::next(it).base());
}

ObjRef VirtualMachine::start_thread(VMContext& ctx, std::int32_t method_id,
                                    ObjRef arg) {
  Engine* engine = ctx.engine;
  if (engine == nullptr) {
    throw std::logic_error("start_thread: context has no engine");
  }
  // A metered job (fuel armed or a tenant allocation budget bound — the
  // service layer's two boundaries) may not spawn threads: the child would
  // run on a fresh context with no meter and no budget, and could keep
  // running after the job completes and its budget is released — escaping
  // both boundaries. Surface as a catchable managed fault (DESIGN.md §11).
  if (ctx.fuel.active || ctx.tlab.budget() != nullptr) {
    throw_exception(ctx, module_.exception_class(),
                    "Thread.Start refused: metered jobs are single-threaded");
    return nullptr;
  }
  const MethodDef& m = module_.method(method_id);
  if (m.sig.params.size() != 1 || m.sig.params[0] != ValType::Ref) {
    throw_exception(ctx, module_.exception_class(),
                    "thread entry point must take one ref argument");
    return nullptr;
  }

  auto rec = std::make_unique<ManagedThread>();
  ManagedThread* t = rec.get();
  t->arg = arg;

  ObjRef handle = heap_.alloc_instance(thread_class_, &ctx.tlab);
  if (handle == nullptr) {  // tenant allocation budget refused
    throw_exception(ctx, module_.out_of_memory_class(),
                    "allocation budget exhausted");
    return nullptr;
  }
  t->handle = handle;

  std::int32_t index;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    index = static_cast<std::int32_t>(threads_.size());
    threads_.push_back(std::move(rec));
  }
  handle->fields()[0] = Slot::from_i32(index);

  t->thread = std::thread([this, engine, method_id, t] {
    auto child = attach_thread(engine);
    try {
      Slot a = Slot::from_ref(t->arg);
      engine->invoke(*child, method_id, std::span<const Slot>(&a, 1));
    } catch (const ManagedException&) {
      // An exception escaping a thread entry point terminates the thread
      // silently (matching the benchmarks' expectations).
    }
    t->arg = nullptr;
    t->done.store(true);
    detach_thread(*child);
  });
  return handle;
}

void VirtualMachine::join_thread(VMContext& ctx, ObjRef handle) {
  if (handle == nullptr || handle->kind != ObjKind::Instance ||
      handle->klass != thread_class_) {
    throw_exception(ctx, module_.exception_class(), "bad thread handle");
    return;
  }
  const std::int32_t index = handle->fields()[0].i32;
  ManagedThread* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (index < 0 || static_cast<std::size_t>(index) >= threads_.size()) {
      throw_exception(ctx, module_.exception_class(), "bad thread handle");
      return;
    }
    t = threads_[static_cast<std::size_t>(index)].get();
    if (t->joined) return;
    t->joined = true;
  }
  enter_safe_region(ctx);
  if (t->thread.joinable()) t->thread.join();
  leave_safe_region(ctx);
  t->handle = nullptr;  // handle no longer needs pinning via the registry
}

}  // namespace hpcnet::vm

// The Virtual Execution System: the VirtualMachine facade (heap, monitors,
// managed threads, safepoints, GC), per-thread VMContext, and the Engine
// interface implemented by the three tiers the paper compares:
//
//   Tier::Interp     — per-instruction dynamic dispatch (SSCLI/Rotor role)
//   Tier::Baseline   — type-specialized threaded code   (Mono 0.23 role)
//   Tier::Optimizing — stack-to-register JIT + passes   (CLR 1.1 / JVM role)
//
// A named EngineProfile selects a tier plus the optimization-pass mix that
// reproduces each paper VM's observed behaviour (see DESIGN.md §5). The
// three tiers are backends of one TieredEngine: in the default Single mode
// every method runs on the profile's tier from the first call (the paper's
// measurement mode); "<profile>.tiered" variants interpret cold code and
// promote hot methods through the tiers at call boundaries, sharing compiled
// bodies through a VM-owned CodeCache (DESIGN.md "Tiered execution").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/java_random.hpp"
#include "support/timer.hpp"
#include "vm/heap.hpp"
#include "vm/module.hpp"

namespace hpcnet::vm {

class VirtualMachine;
class Engine;
class CodeCache;
class MonitorTable;
struct VMContext;

// ---------------------------------------------------------------------------
// Engine profiles.

enum class Tier : std::uint8_t { Interp, Baseline, Optimizing };

/// Single = the profile's tier runs every method from the first call (the
/// paper's measurement mode, and what keeps the per-engine benches
/// comparable). Tiered = methods start in the interpreter and promote
/// through the tiers as hotness counters cross the policy thresholds.
enum class TierMode : std::uint8_t { Single, Tiered };

/// Hotness-driven promotion policy. Hotness is invocations plus capped
/// back-edge credit, accumulated in the profile's CodeCache entry. Methods
/// promote at call boundaries; a frame already running when its method gets
/// hot enters compiled code mid-loop via on-stack replacement once its OWN
/// taken back edges cross `osr_backedge_trigger` (DESIGN.md §10).
struct TierPolicy {
  TierMode mode = TierMode::Single;
  Tier max_tier = Tier::Optimizing;      // highest tier this profile reaches
  std::uint32_t baseline_threshold = 8;  // hotness to leave the interpreter
  std::uint32_t opt_threshold = 64;      // hotness to enter the register JIT
  std::uint32_t backedge_credit = 64;    // per-frame cap on back-edge hotness
                                         // flushed at frame exit
  std::uint32_t tiny_method_il = 8;      // bodies <= this are call-overhead
                                         // bound: first call goes baseline
  std::uint32_t osr_backedge_trigger = 1024;  // taken back edges inside ONE
                                              // frame before OSR kicks in
                                              // (profiles capped below the
                                              // optimizing tier never OSR)
};

/// Optimization-pass flags for the Optimizing tier. Each maps to a behaviour
/// the paper observed in a specific JIT (DESIGN.md §5).
struct EngineFlags {
  bool copy_propagation = true;   // enregistration of stack traffic
  bool fuse_cmp_branch = true;    // compare+branch superinstructions
  bool imm_operands = true;       // constant operands folded into instructions
  bool bounds_check_elim = true;  // hoist array bounds checks in counted loops
  bool redundant_const_store = false;  // CLR 1.1 quirk: spills the divisor
                                       // constant to a temp (paper Table 6)
  bool div_imm_fusion = false;    // IBM JVM: keeps the divisor as an immediate
  bool mul_imm_fusion = false;    // CLR: immediate multiply forms
  int enregister_limit = 1 << 30;  // locals beyond this stay in memory
                                   // (CLR 1.0/1.1 used 64; paper §5)
  bool fast_multidim = true;   // direct rank-2 indexing vs generic helper
  bool fast_math = true;       // inlined math intrinsics vs generic call path
  bool cheap_exceptions = false;  // JVM-style lightweight throw path
  bool inline_calls = false;   // method inlining at CALL sites
  int inline_max_il = 24;      // max callee body size (IL instructions)
  int inline_depth = 2;        // inlining rounds; a directly recursive callee
                               // unrolls one level per round (the HotSpot
                               // MaxRecursiveInlineLevel idea)
  int inline_total_il = 256;   // stop expanding past this caller body size
  bool cse = false;            // common-subexpression elimination (EBB-scoped
                               // value numbering incl. ldlen/field/elem loads)
  bool licm = false;           // loop-invariant code motion from back-edges
  bool vectorize = false;      // VECLOOP superinstruction lowering for
                               // recognized map/reduction/stencil loops
                               // (DESIGN.md §12); off in all seven paper
                               // profiles so they stay bit-identical
};

struct EngineProfile {
  std::string name;
  Tier tier = Tier::Optimizing;
  EngineFlags flags;
  TierPolicy tiering;  // Single by default: existing profiles are unchanged
};

/// The seven VM configurations benchmarked by the paper, plus "native" which
/// is handled outside the VM (src/kernels).
namespace profiles {
EngineProfile clr11();
EngineProfile ibm131();
EngineProfile sun14();
EngineProfile bea81();
EngineProfile jsharp11();
EngineProfile mono023();
EngineProfile rotor10();
/// All of the above, in the paper's presentation order.
std::vector<EngineProfile> all();
/// Mixed-mode variant of `base`: renamed "<name>.tiered", methods start
/// interpreted and promote up to base.tier. The rotor shape stays
/// interp-only, mono becomes baseline-heavy (low threshold, capped at
/// baseline), and the optimizing profiles get the clr/ibm mixed-mode shape.
EngineProfile tiered(EngineProfile base);
/// Vector-tier variant of `base`: renamed "<name>.vec", the optimizing tier
/// additionally lowers recognized counted loops into VECLOOP
/// superinstructions (requires bounds_check_elim, which it forces on). Only
/// meaningful for profiles that reach Tier::Optimizing.
EngineProfile vec(EngineProfile base);
/// Lookup by name; "<profile>.tiered" resolves to tiered(<profile>) and
/// "<profile>.vec" to vec(<profile>); the suffixes compose left to right.
/// Throws std::invalid_argument for unknown names.
EngineProfile by_name(const std::string& name);
}  // namespace profiles

// ---------------------------------------------------------------------------
// GC stack walking.

/// A node in a thread's shadow stack. Engines push one per managed frame and
/// implement enumerate() to report the frame's live object references.
struct GcFrame {
  GcFrame* parent = nullptr;
  void (*enumerate)(const GcFrame* self, void (*visit)(ObjRef, void*),
                    void* arg) = nullptr;
};

// ---------------------------------------------------------------------------
// Frame arena: bump allocation for activation records.

class FrameArena {
 public:
  explicit FrameArena(std::size_t bytes = 16u << 20)
      : buf_(new char[bytes]), size_(bytes) {}

  struct Mark {
    std::size_t pos;
  };
  Mark mark() const { return {pos_}; }
  void release(Mark m) { pos_ = m.pos; }

  /// Returns zeroed, Slot-aligned storage; throws on overflow (the managed
  /// "stack overflow" condition).
  void* alloc(std::size_t bytes);

 private:
  std::unique_ptr<char[]> buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Managed exception escaping to native code.

class ManagedException : public std::runtime_error {
 public:
  ManagedException(std::string class_name, std::string message)
      : std::runtime_error(class_name + ": " + message),
        class_name_(std::move(class_name)),
        message_(std::move(message)) {}
  const std::string& class_name() const { return class_name_; }
  const std::string& message() const { return message_; }

 private:
  std::string class_name_;
  std::string message_;
};

// ---------------------------------------------------------------------------
// Per-thread execution context.

/// Deterministic execution metering. The service layer (src/vm/service) arms
/// one of these per job; the tier backends charge taken backward branches
/// against it at the pulse cadence they already use for OSR arming, so
/// metering adds no second branch to the dispatch loops (DESIGN.md §11).
/// When the budget runs dry the job faults with a catchable FuelExhausted
/// exception at the next back-edge safepoint or call boundary.
///
/// The meter also carries the job's wall-clock deadline (DESIGN.md §14):
/// fuel is deterministic but not time, so a tenant job that must finish by a
/// real-time SLA arms `deadline_ns` (monotonic, support::now_ns epoch) next
/// to — or instead of — a fuel budget. The deadline is polled at the same
/// back-edge pulse cadence as fuel and at call boundaries, surfacing as a
/// catchable HPCNet.DeadlineExceededException; overshoot past the deadline
/// is bounded by one pulse window of execution. A job with only a deadline
/// armed runs with `remaining` clamped to INT64_MAX so the fuel axis never
/// fires.
struct FuelMeter {
  bool active = false;
  std::int64_t remaining = 0;  // may go negative by < one pulse window
  std::uint64_t spent = 0;     // taken backward branches charged so far
  std::int64_t deadline_ns = 0;  // monotonic now_ns() deadline; 0 = none

  void charge(std::uint64_t n) {
    spent += n;
    remaining -= static_cast<std::int64_t>(n);
  }
  bool exhausted() const { return active && remaining <= 0; }
  /// True once the wall clock has passed the armed deadline. Costs a clock
  /// read, so callers check it only at pulse/call-boundary cadence and only
  /// when a deadline is armed.
  bool past_deadline() const {
    return deadline_ns != 0 && support::now_ns() >= deadline_ns;
  }
};

/// Fuel pulse cadence when no OSR counter is armed; with the tiered pipeline
/// the pulse rides the OSR trigger instead (one shared counter per frame).
constexpr std::uint32_t kFuelPulseBackedges = 1024;

struct VMContext {
  VirtualMachine* vm = nullptr;
  Engine* engine = nullptr;  // engine executing this thread's managed code
  std::uint32_t thread_id = 0;  // 1-based managed thread id
  std::thread::id os_id{};      // the attached OS thread
  GcFrame* top_frame = nullptr;
  ObjRef pending_exception = nullptr;
  FrameArena arena;
  Tlab tlab;  // this thread's allocation buffer; registered with the heap
              // while attached, retired at GC rendezvous and detach
  support::JavaRandom math_random{20030315};  // Math.random() state
  FuelMeter fuel;  // per-job execution budget (inactive outside the service)

  bool has_pending() const { return pending_exception != nullptr; }
};

// ---------------------------------------------------------------------------
// Engine interface.

class Engine {
 public:
  virtual ~Engine() = default;

  /// Runs `method_id` with `args` on the calling thread. If a managed
  /// exception escapes the outermost frame it is rethrown as
  /// ManagedException. `ctx` must be attached to the VM.
  Slot invoke(VMContext& ctx, std::int32_t method_id,
              std::span<const Slot> args);

  virtual const EngineProfile& profile() const = 0;
  const std::string& name() const { return profile().name; }

 protected:
  /// Engine-specific execution; on managed exception, sets
  /// ctx.pending_exception and returns (return value undefined).
  virtual Slot do_invoke(VMContext& ctx, const MethodDef& method,
                         Slot* args) = 0;
  friend class VirtualMachine;
};

/// Creates the (tiered) engine for a profile, bound to `vm`.
std::unique_ptr<Engine> make_engine(VirtualMachine& vm,
                                    const EngineProfile& profile);

// ---------------------------------------------------------------------------
// The VM.

class VirtualMachine {
 public:
  VirtualMachine();
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  Module& module() { return module_; }
  Heap& heap() { return heap_; }
  MonitorTable& monitors() { return *monitors_; }

  /// Attaches the calling thread as a managed thread. The returned context
  /// must be detached before the thread exits. The "main" thread of examples
  /// and tests typically uses main_context() instead.
  std::unique_ptr<VMContext> attach_thread(Engine* engine);
  void detach_thread(VMContext& ctx);

  /// Lazily-attached context for the calling (host) thread.
  VMContext& main_context();

  // -- Safepoint protocol --------------------------------------------------
  /// Fast-path poll, called by engines at back-edges and calls.
  void safepoint_poll(VMContext& ctx) {
    if (stw_requested_.load(std::memory_order_acquire)) safepoint_park(ctx);
  }
  /// Marks the thread GC-safe across a blocking operation (monitor wait,
  /// join, sleep). While safe, the thread must not touch the managed heap.
  void enter_safe_region(VMContext& ctx);
  void leave_safe_region(VMContext& ctx);

  /// Stops the world, marks from all roots, sweeps. Called automatically at
  /// the allocation threshold (Minor unless the old generation outgrew its
  /// own threshold); direct calls (GC.Collect) default to a full Major
  /// collection, preserving the pre-generational contract that an explicit
  /// collect reclaims every unreachable object.
  void collect(GcKind kind = GcKind::Major);

  // -- Exception helpers ----------------------------------------------------
  /// Allocates an exception instance of `class_id` with `message`.
  ObjRef make_exception(VMContext& ctx, std::int32_t class_id,
                        const std::string& message);
  /// Sets ctx.pending_exception to a new instance of `class_id`.
  void throw_exception(VMContext& ctx, std::int32_t class_id,
                       const std::string& message);
  /// Class name + message of an exception object (for ManagedException).
  std::pair<std::string, std::string> describe_exception(ObjRef exc);

  // -- Pinned handles (native code holding refs across allocations) --------
  void pin(ObjRef obj);
  void unpin(ObjRef obj);

  // -- Managed threads -------------------------------------------------------
  /// Starts a managed thread running `method_id(arg)` on `engine`; returns a
  /// handle object. Used by the Thread.Start intrinsic and the MT benchmarks.
  /// Refused (catchable managed exception, returns nullptr) when `ctx` is
  /// metered — fuel armed or an allocation budget bound — because the child
  /// context would be neither and would escape both boundaries.
  ObjRef start_thread(VMContext& ctx, std::int32_t method_id, ObjRef arg);
  /// Joins the thread behind `handle` (safe-region blocking).
  void join_thread(VMContext& ctx, ObjRef handle);
  std::int32_t thread_class() const { return thread_class_; }

  /// Number of GCs performed (tests).
  std::size_t gc_count() const { return gc_count_.load(); }

  // -- Code cache ------------------------------------------------------------
  /// The code cache for `key` (created on first use). Engines key their
  /// cache by profile name, so engines sharing a VM and a name share
  /// compiled code; profiles with differing flags must therefore use
  /// distinct names. Verification state lives in the reserved "<verify>"
  /// cache shared by every engine on this VM.
  CodeCache& code_cache(const std::string& key);
  /// Names of every cache created so far, sorted (snapshot save enumerates
  /// these to archive each warmed profile; "<verify>" is included — callers
  /// that only want engine profiles skip it).
  std::vector<std::string> code_cache_keys() const;

 private:
  friend class Engine;
  void safepoint_park(VMContext& ctx);
  void mark_roots();
  bool calling_thread_attached_locked() const;
  void attach_locked(VMContext& ctx, std::unique_lock<std::mutex>& lock);

  Module module_;
  Heap heap_;
  std::unique_ptr<MonitorTable> monitors_;
  std::int32_t thread_class_ = -1;

  // Thread registry + safepoint state.
  std::mutex park_mu_;
  std::condition_variable park_cv_;    // signalled when a thread parks
  std::condition_variable resume_cv_;  // signalled when the world resumes
  std::atomic<bool> stw_requested_{false};
  int num_running_ = 0;
  std::vector<VMContext*> contexts_;  // all attached threads
  std::uint32_t next_thread_id_ = 1;
  std::mutex world_mu_;  // serializes collections
  std::atomic<std::size_t> gc_count_{0};

  // Managed thread table.
  struct ManagedThread {
    std::thread thread;
    ObjRef arg = nullptr;        // root until the thread picks it up
    ObjRef handle = nullptr;     // root for the handle object
    std::atomic<bool> done{false};
    bool joined = false;
  };
  std::mutex threads_mu_;
  std::vector<std::unique_ptr<ManagedThread>> threads_;

  std::mutex pins_mu_;
  std::vector<ObjRef> pinned_;

  std::mutex main_ctx_mu_;
  std::unique_ptr<VMContext> main_ctx_;

  mutable std::mutex caches_mu_;
  std::map<std::string, std::unique_ptr<CodeCache>> caches_;
};

/// RAII pin.
class Pinned {
 public:
  Pinned(VirtualMachine& vm, ObjRef obj) : vm_(&vm), obj_(obj) {
    if (obj_ != nullptr) vm_->pin(obj_);
  }
  ~Pinned() {
    if (obj_ != nullptr) vm_->unpin(obj_);
  }
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
  ObjRef get() const { return obj_; }

 private:
  VirtualMachine* vm_;
  ObjRef obj_;
};

}  // namespace hpcnet::vm

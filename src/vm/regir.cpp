#include "vm/regir.hpp"

#include <cmath>
#include <cstdio>

#include "vm/intrinsics.hpp"
#include "vm/veckernels.hpp"

namespace hpcnet::vm::regir {

Math1Fn math1_fn(std::int32_t intr_id) {
  switch (intr_id) {
    case I_SIN: return [](double x) { return std::sin(x); };
    case I_COS: return [](double x) { return std::cos(x); };
    case I_TAN: return [](double x) { return std::tan(x); };
    case I_ASIN: return [](double x) { return std::asin(x); };
    case I_ACOS: return [](double x) { return std::acos(x); };
    case I_ATAN: return [](double x) { return std::atan(x); };
    case I_FLOOR: return [](double x) { return std::floor(x); };
    case I_CEIL: return [](double x) { return std::ceil(x); };
    case I_SQRT: return [](double x) { return std::sqrt(x); };
    case I_EXP: return [](double x) { return std::exp(x); };
    case I_LOG: return [](double x) { return std::log(x); };
    case I_RINT: return [](double x) { return std::rint(x); };
    default: return nullptr;
  }
}

Math2Fn math2_fn(std::int32_t intr_id) {
  switch (intr_id) {
    case I_ATAN2: return [](double y, double x) { return std::atan2(y, x); };
    case I_POW: return [](double x, double y) { return std::pow(x, y); };
    default: return nullptr;
  }
}

namespace {

const char* name_of(ROp op) {
  switch (op) {
    case ROp::NOP_R: return "nop";
    case ROp::MOV: return "mov";
    case ROp::MEMLD: return "mem.ld";
    case ROp::MEMST: return "mem.st";
    case ROp::LDI: return "ldi";
    case ROp::LDSTR_R: return "ldstr";
    case ROp::ADD_I4: return "add.i4";
    case ROp::SUB_I4: return "sub.i4";
    case ROp::MUL_I4: return "mul.i4";
    case ROp::DIV_I4: return "div.i4";
    case ROp::REM_I4: return "rem.i4";
    case ROp::NEG_I4: return "neg.i4";
    case ROp::ADD_I8: return "add.i8";
    case ROp::SUB_I8: return "sub.i8";
    case ROp::MUL_I8: return "mul.i8";
    case ROp::DIV_I8: return "div.i8";
    case ROp::REM_I8: return "rem.i8";
    case ROp::NEG_I8: return "neg.i8";
    case ROp::ADD_R4: return "add.r4";
    case ROp::SUB_R4: return "sub.r4";
    case ROp::MUL_R4: return "mul.r4";
    case ROp::DIV_R4: return "div.r4";
    case ROp::REM_R4: return "rem.r4";
    case ROp::NEG_R4: return "neg.r4";
    case ROp::ADD_R8: return "add.r8";
    case ROp::SUB_R8: return "sub.r8";
    case ROp::MUL_R8: return "mul.r8";
    case ROp::DIV_R8: return "div.r8";
    case ROp::REM_R8: return "rem.r8";
    case ROp::NEG_R8: return "neg.r8";
    case ROp::ADDI_I4: return "addi.i4";
    case ROp::SUBI_I4: return "subi.i4";
    case ROp::MULI_I4: return "muli.i4";
    case ROp::DIVI_I4: return "divi.i4";
    case ROp::REMI_I4: return "remi.i4";
    case ROp::ADDI_I8: return "addi.i8";
    case ROp::SUBI_I8: return "subi.i8";
    case ROp::MULI_I8: return "muli.i8";
    case ROp::DIVI_I8: return "divi.i8";
    case ROp::REMI_I8: return "remi.i8";
    case ROp::ADDI_R8: return "addi.r8";
    case ROp::MULI_R8: return "muli.r8";
    case ROp::AND_I4: return "and.i4";
    case ROp::OR_I4: return "or.i4";
    case ROp::XOR_I4: return "xor.i4";
    case ROp::NOT_I4: return "not.i4";
    case ROp::SHL_I4: return "shl.i4";
    case ROp::SHR_I4: return "shr.i4";
    case ROp::SHRU_I4: return "shru.i4";
    case ROp::AND_I8: return "and.i8";
    case ROp::OR_I8: return "or.i8";
    case ROp::XOR_I8: return "xor.i8";
    case ROp::NOT_I8: return "not.i8";
    case ROp::SHL_I8: return "shl.i8";
    case ROp::SHR_I8: return "shr.i8";
    case ROp::SHRU_I8: return "shru.i8";
    case ROp::SHLI_I4: return "shli.i4";
    case ROp::SHRI_I4: return "shri.i4";
    case ROp::SHLI_I8: return "shli.i8";
    case ROp::SHRI_I8: return "shri.i8";
    case ROp::ANDI_I4: return "andi.i4";
    case ROp::CEQ_I4: return "ceq.i4";
    case ROp::CGT_I4: return "cgt.i4";
    case ROp::CLT_I4: return "clt.i4";
    case ROp::CEQ_I8: return "ceq.i8";
    case ROp::CGT_I8: return "cgt.i8";
    case ROp::CLT_I8: return "clt.i8";
    case ROp::CEQ_R4: return "ceq.r4";
    case ROp::CGT_R4: return "cgt.r4";
    case ROp::CLT_R4: return "clt.r4";
    case ROp::CEQ_R8: return "ceq.r8";
    case ROp::CGT_R8: return "cgt.r8";
    case ROp::CLT_R8: return "clt.r8";
    case ROp::CEQ_REF: return "ceq.ref";
    case ROp::CV_I4_I8: return "cv.i4.i8";
    case ROp::CV_I4_R4: return "cv.i4.r4";
    case ROp::CV_I4_R8: return "cv.i4.r8";
    case ROp::CV_I8_I4: return "cv.i8.i4";
    case ROp::CV_I8_R4: return "cv.i8.r4";
    case ROp::CV_I8_R8: return "cv.i8.r8";
    case ROp::CV_R4_I4: return "cv.r4.i4";
    case ROp::CV_R4_I8: return "cv.r4.i8";
    case ROp::CV_R4_R8: return "cv.r4.r8";
    case ROp::CV_R8_I4: return "cv.r8.i4";
    case ROp::CV_R8_I8: return "cv.r8.i8";
    case ROp::CV_R8_R4: return "cv.r8.r4";
    case ROp::SEXT8: return "sext8";
    case ROp::ZEXT8: return "zext8";
    case ROp::SEXT16: return "sext16";
    case ROp::ZEXT16: return "zext16";
    case ROp::JMP: return "jmp";
    case ROp::JMPB: return "jmpb";
    case ROp::JZ_I4: return "jz.i4";
    case ROp::JNZ_I4: return "jnz.i4";
    case ROp::JZ_I8: return "jz.i8";
    case ROp::JNZ_I8: return "jnz.i8";
    case ROp::JZ_REF: return "jz.ref";
    case ROp::JNZ_REF: return "jnz.ref";
    case ROp::JEQ_I4: return "jeq.i4";
    case ROp::JNE_I4: return "jne.i4";
    case ROp::JLT_I4: return "jlt.i4";
    case ROp::JLE_I4: return "jle.i4";
    case ROp::JGT_I4: return "jgt.i4";
    case ROp::JGE_I4: return "jge.i4";
    case ROp::JEQ_I8: return "jeq.i8";
    case ROp::JNE_I8: return "jne.i8";
    case ROp::JLT_I8: return "jlt.i8";
    case ROp::JLE_I8: return "jle.i8";
    case ROp::JGT_I8: return "jgt.i8";
    case ROp::JGE_I8: return "jge.i8";
    case ROp::JEQ_R4: return "jeq.r4";
    case ROp::JNE_R4: return "jne.r4";
    case ROp::JLT_R4: return "jlt.r4";
    case ROp::JLE_R4: return "jle.r4";
    case ROp::JGT_R4: return "jgt.r4";
    case ROp::JGE_R4: return "jge.r4";
    case ROp::JEQ_R8: return "jeq.r8";
    case ROp::JNE_R8: return "jne.r8";
    case ROp::JLT_R8: return "jlt.r8";
    case ROp::JLE_R8: return "jle.r8";
    case ROp::JGT_R8: return "jgt.r8";
    case ROp::JGE_R8: return "jge.r8";
    case ROp::JEQ_REF: return "jeq.ref";
    case ROp::JNE_REF: return "jne.ref";
    case ROp::JEQI_I4: return "jeqi.i4";
    case ROp::JNEI_I4: return "jnei.i4";
    case ROp::JLTI_I4: return "jlti.i4";
    case ROp::JLEI_I4: return "jlei.i4";
    case ROp::JGTI_I4: return "jgti.i4";
    case ROp::JGEI_I4: return "jgei.i4";
    case ROp::CALL_R: return "call";
    case ROp::CALLINTR_R: return "call.intr";
    case ROp::MATH1_R8: return "math1.r8";
    case ROp::MATH2_R8: return "math2.r8";
    case ROp::ABS_I4_R: return "abs.i4";
    case ROp::ABS_I8_R: return "abs.i8";
    case ROp::ABS_R4_R: return "abs.r4";
    case ROp::ABS_R8_R: return "abs.r8";
    case ROp::MAX_I4_R: return "max.i4";
    case ROp::MAX_I8_R: return "max.i8";
    case ROp::MAX_R4_R: return "max.r4";
    case ROp::MAX_R8_R: return "max.r8";
    case ROp::MIN_I4_R: return "min.i4";
    case ROp::MIN_I8_R: return "min.i8";
    case ROp::MIN_R4_R: return "min.r4";
    case ROp::MIN_R8_R: return "min.r8";
    case ROp::RET_R: return "ret";
    case ROp::NEWOBJ_R: return "newobj";
    case ROp::LDFLD_R: return "ldfld";
    case ROp::STFLD_R: return "stfld";
    case ROp::LDSFLD_R: return "ldsfld";
    case ROp::STSFLD_R: return "stsfld";
    case ROp::NEWARR_R: return "newarr";
    case ROp::LDLEN_R: return "ldlen";
    case ROp::CHK_BOUNDS: return "chk.bounds";
    case ROp::JLT_LEN: return "jlt.len";
    case ROp::LDELEM_I4: return "ldelem.i4";
    case ROp::LDELEM_I8: return "ldelem.i8";
    case ROp::LDELEM_R4: return "ldelem.r4";
    case ROp::LDELEM_R8: return "ldelem.r8";
    case ROp::LDELEM_REF: return "ldelem.ref";
    case ROp::STELEM_I4: return "stelem.i4";
    case ROp::STELEM_I8: return "stelem.i8";
    case ROp::STELEM_R4: return "stelem.r4";
    case ROp::STELEM_R8: return "stelem.r8";
    case ROp::STELEM_REF: return "stelem.ref";
    case ROp::LDELEMU_I4: return "ldelem.i4.nb";
    case ROp::LDELEMU_I8: return "ldelem.i8.nb";
    case ROp::LDELEMU_R4: return "ldelem.r4.nb";
    case ROp::LDELEMU_R8: return "ldelem.r8.nb";
    case ROp::LDELEMU_REF: return "ldelem.ref.nb";
    case ROp::STELEMU_I4: return "stelem.i4.nb";
    case ROp::STELEMU_I8: return "stelem.i8.nb";
    case ROp::STELEMU_R4: return "stelem.r4.nb";
    case ROp::STELEMU_R8: return "stelem.r8.nb";
    case ROp::STELEMU_REF: return "stelem.ref.nb";
    case ROp::NEWMAT_R: return "newmat";
    case ROp::LDEL2_I4: return "ldel2.i4";
    case ROp::LDEL2_I8: return "ldel2.i8";
    case ROp::LDEL2_R4: return "ldel2.r4";
    case ROp::LDEL2_R8: return "ldel2.r8";
    case ROp::LDEL2_REF: return "ldel2.ref";
    case ROp::STEL2_I4: return "stel2.i4";
    case ROp::STEL2_I8: return "stel2.i8";
    case ROp::STEL2_R4: return "stel2.r4";
    case ROp::STEL2_R8: return "stel2.r8";
    case ROp::STEL2_REF: return "stel2.ref";
    case ROp::LDEL2_SLOW: return "ldel2.generic";
    case ROp::STEL2_SLOW: return "stel2.generic";
    case ROp::LDMROWS_R: return "ldmrows";
    case ROp::LDMCOLS_R: return "ldmcols";
    case ROp::BOX_R: return "box";
    case ROp::UNBOX_R: return "unbox";
    case ROp::THROW_R: return "throw";
    case ROp::LEAVE_R: return "leave";
    case ROp::ENDFINALLY_R: return "endfinally";
    case ROp::SAFEPOINT: return "safepoint";
    case ROp::CARDMARK: return "cardmark";
    case ROp::VECLOOP: return "vecloop";
    case ROp::COUNT_: break;
  }
  return "?";
}

bool has_imm(ROp op) {
  switch (op) {
    case ROp::LDI:
    case ROp::ADDI_I4: case ROp::SUBI_I4: case ROp::MULI_I4:
    case ROp::DIVI_I4: case ROp::REMI_I4:
    case ROp::ADDI_I8: case ROp::SUBI_I8: case ROp::MULI_I8:
    case ROp::DIVI_I8: case ROp::REMI_I8:
    case ROp::ADDI_R8: case ROp::MULI_R8:
    case ROp::SHLI_I4: case ROp::SHRI_I4: case ROp::SHLI_I8:
    case ROp::SHRI_I8: case ROp::ANDI_I4:
    case ROp::JEQI_I4: case ROp::JNEI_I4: case ROp::JLTI_I4:
    case ROp::JLEI_I4: case ROp::JGTI_I4: case ROp::JGEI_I4:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string to_string(const RInstr& in) {
  char buf[160];
  if (has_imm(in.op)) {
    std::snprintf(buf, sizeof buf, "%-12s r%d, r%d, #%lld", name_of(in.op),
                  in.d, in.a, static_cast<long long>(in.imm.i64));
  } else {
    std::snprintf(buf, sizeof buf, "%-12s r%d, r%d, r%d", name_of(in.op), in.d,
                  in.a, in.b);
  }
  std::string s = buf;
  if (in.pinned()) s += "  ; pinned";
  return s;
}

std::string to_string(const RInstr& in, const RCode& code) {
  if (in.op != ROp::VECLOOP || in.a < 0 ||
      static_cast<std::size_t>(in.a) >= code.vec_loops.size()) {
    return to_string(in);
  }
  // Render from the side table: kernel name, spans, induction/limit.
  const RCode::VecLoop& v = code.vec_loops[static_cast<std::size_t>(in.a)];
  std::string s;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-12s %s i=r%d", "vecloop",
                veckernels::kernel_name(v.kernel), v.ivar);
  s += buf;
  if (v.limit >= 0) {
    std::snprintf(buf, sizeof buf, " lim=r%d", v.limit);
  } else {
    std::snprintf(buf, sizeof buf, " lim=len(r%d)", v.limit_arr);
  }
  s += buf;
  const std::int32_t arrs[3] = {v.arr0, v.arr1, v.arr2};
  for (int k = 0; k < 3; ++k) {
    if (arrs[k] < 0) continue;
    std::snprintf(buf, sizeof buf, " a%d=r%d", k, arrs[k]);
    s += buf;
  }
  if (v.acc >= 0) {
    std::snprintf(buf, sizeof buf, " acc=r%d", v.acc);
    s += buf;
  }
  for (int k = 0; k < 2; ++k) {
    const std::int32_t sreg = k == 0 ? v.s0_reg : v.s1_reg;
    const std::int64_t bits = k == 0 ? v.s0_bits : v.s1_bits;
    if (sreg < 0 && bits == 0) continue;  // kernel takes no such scalar
    if (sreg >= 0) {
      std::snprintf(buf, sizeof buf, " s%d=r%d", k, sreg);
    } else {
      std::snprintf(buf, sizeof buf, " s%d=#%lld", k,
                    static_cast<long long>(bits));
    }
    s += buf;
  }
  if (in.pinned()) s += "  ; pinned";
  return s;
}

std::string to_string(const RCode& code) {
  std::string s;
  s += "; " + code.method->name + " — " +
       std::to_string(code.code.size()) + " register instructions, " +
       std::to_string(code.num_regs) + " registers (" +
       std::to_string(code.slot_regs) + " local slots)\n";
  char head[48];
  for (std::size_t i = 0; i < code.code.size(); ++i) {
    std::snprintf(head, sizeof head, "%4zu: ", i);
    s += head;
    s += to_string(code.code[i], code);
    s += "\n";
  }
  return s;
}

}  // namespace hpcnet::vm::regir

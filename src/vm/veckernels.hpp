// Vector kernel library backing the VECLOOP superinstruction (DESIGN.md §12).
//
// Each kernel runs one whole recognized loop over raw unboxed array spans.
// The dispatch layer (optimizing.cpp) has already proven every span access
// in-bounds before a kernel runs, so the kernels themselves do no checking —
// with one exception: GatherDot's indices are data-dependent, so it validates
// each gather index itself and abandons (writing nothing) on a violation,
// letting the retained scalar loop re-run and throw at the exact element.
//
// Bit-identity contract (the paper validates kernel outputs across engines):
//  - Element-independent map kernels may be SIMD: IEEE add/mul are exact per
//    lane, so any lane grouping gives bit-identical results. These are the
//    only kernels the HPCNET_SIMD gate accelerates with intrinsics.
//  - Reductions (Sum/Dot/GatherDot) and the SOR stencil (loop-carried
//    g[j-1] recurrence) run in strict scalar order — no reassociation. The
//    win there is dispatch elimination, not lane parallelism.
//  - veckernels.cpp is compiled with -ffp-contract=off so no FMA contraction
//    changes the separately-rounded mul+add the scalar engines produce.
#pragma once

#include <cstdint>

namespace hpcnet::vm::veckernels {

enum VecKernel : std::int32_t {
  // f64 kernels.
  kMapScaleF64 = 0,  // arr0[i] = arr0[i] * s0
  kMapAddF64,        // arr0[i] = arr0[i] + arr1[i]
  kDaxpyF64,         // arr0[i] = arr0[i] + s0 * arr1[i]
  kSumF64,           // acc += arr0[i]                       (strict order)
  kDotF64,           // acc += arr0[i] * arr1[i]             (strict order)
  kGatherDotF64,     // acc += arr0[arr1[i]] * arr2[i]       (strict order;
                     //   arr1 is an i32 index array, checked per element)
  kSor5F64,          // arr0[i] = s0*(((arr1[i]+arr2[i])+arr0[i-1])+arr0[i+1])
                     //           + s1*arr0[i]               (strict order)
  // i32 kernels (two's-complement wrapping, arith.hpp semantics).
  kMapScaleI4,       // arr0[i] = arr0[i] * s0
  kMapAddI4,         // arr0[i] = arr0[i] + arr1[i]
  kDaxpyI4,          // arr0[i] = arr0[i] + s0 * arr1[i]
  kSumI4,            // acc += arr0[i]
  kDotI4,            // acc += arr0[i] * arr1[i]
  kCount_,
};

const char* kernel_name(std::int32_t k);

// --- f64 ---------------------------------------------------------------
void map_scale_f64(double* a, std::int32_t start, std::int32_t limit,
                   double s);
void map_add_f64(double* a, const double* b, std::int32_t start,
                 std::int32_t limit);
void daxpy_f64(double* y, const double* x, std::int32_t start,
               std::int32_t limit, double s);
double sum_f64(const double* a, std::int32_t start, std::int32_t limit,
               double acc);
double dot_f64(const double* a, const double* b, std::int32_t start,
               std::int32_t limit, double acc);
/// Returns false (and writes nothing through *out) if any gather index is
/// out of [0, xlen) — the caller must fall back to the scalar loop, which
/// throws IndexOutOfRange at the right element.
bool gather_dot_f64(const double* x, std::int32_t xlen,
                    const std::int32_t* col, const double* val,
                    std::int32_t start, std::int32_t limit, double acc,
                    double* out);
void sor5_f64(double* g, const double* up, const double* down,
              std::int32_t start, std::int32_t limit, double s0, double s1);

// --- i32 ---------------------------------------------------------------
void map_scale_i32(std::int32_t* a, std::int32_t start, std::int32_t limit,
                   std::int32_t s);
void map_add_i32(std::int32_t* a, const std::int32_t* b, std::int32_t start,
                 std::int32_t limit);
void daxpy_i32(std::int32_t* y, const std::int32_t* x, std::int32_t start,
               std::int32_t limit, std::int32_t s);
std::int32_t sum_i32(const std::int32_t* a, std::int32_t start,
                     std::int32_t limit, std::int32_t acc);
std::int32_t dot_i32(const std::int32_t* a, const std::int32_t* b,
                     std::int32_t start, std::int32_t limit,
                     std::int32_t acc);

/// True when this build's map kernels use SIMD intrinsics (HPCNET_SIMD and
/// a supported ISA); reported in the telemetry summary.
bool simd_enabled();

}  // namespace hpcnet::vm::veckernels

// Structural helpers over the RegIR instruction set, shared by the register
// compiler (regcompile.cpp) and the vector lowering pass (veccompile.cpp).
// These encode per-opcode facts — branchness, purity, operand roles — that
// every pass needs and that must agree across translation units.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/regir.hpp"

namespace hpcnet::vm::regir {

// Rank-2 operand packing (20 bits per register id).
inline constexpr std::int64_t kRegFieldBits = 20;
inline constexpr std::int64_t kRegFieldMask = (1 << kRegFieldBits) - 1;

inline bool is_branch(ROp op) {
  switch (op) {
    case ROp::JMP:
    case ROp::JMPB:
    case ROp::JZ_I4:
    case ROp::JNZ_I4:
    case ROp::JZ_I8:
    case ROp::JNZ_I8:
    case ROp::JZ_REF:
    case ROp::JNZ_REF:
    case ROp::JEQ_I4:
    case ROp::JNE_I4:
    case ROp::JLT_I4:
    case ROp::JLE_I4:
    case ROp::JGT_I4:
    case ROp::JGE_I4:
    case ROp::JEQ_I8:
    case ROp::JNE_I8:
    case ROp::JLT_I8:
    case ROp::JLE_I8:
    case ROp::JGT_I8:
    case ROp::JGE_I8:
    case ROp::JEQ_R4:
    case ROp::JNE_R4:
    case ROp::JLT_R4:
    case ROp::JLE_R4:
    case ROp::JGT_R4:
    case ROp::JGE_R4:
    case ROp::JEQ_R8:
    case ROp::JNE_R8:
    case ROp::JLT_R8:
    case ROp::JLE_R8:
    case ROp::JGT_R8:
    case ROp::JGE_R8:
    case ROp::JEQ_REF:
    case ROp::JNE_REF:
    case ROp::JEQI_I4:
    case ROp::JNEI_I4:
    case ROp::JLTI_I4:
    case ROp::JLEI_I4:
    case ROp::JGTI_I4:
    case ROp::JGEI_I4:
    case ROp::JLT_LEN:
      return true;
    default:
      return false;
  }
}

inline bool is_block_end(ROp op) {
  return is_branch(op) || op == ROp::RET_R || op == ROp::THROW_R ||
         op == ROp::LEAVE_R || op == ROp::ENDFINALLY_R;
}

/// Ops with no side effects whose result may be dead-code-eliminated.
inline bool is_pure(ROp op) {
  switch (op) {
    case ROp::MOV:
    case ROp::LDI:
    case ROp::ADD_I4: case ROp::SUB_I4: case ROp::MUL_I4: case ROp::NEG_I4:
    case ROp::ADD_I8: case ROp::SUB_I8: case ROp::MUL_I8: case ROp::NEG_I8:
    case ROp::ADD_R4: case ROp::SUB_R4: case ROp::MUL_R4: case ROp::DIV_R4:
    case ROp::REM_R4: case ROp::NEG_R4:
    case ROp::ADD_R8: case ROp::SUB_R8: case ROp::MUL_R8: case ROp::DIV_R8:
    case ROp::REM_R8: case ROp::NEG_R8:
    case ROp::ADDI_I4: case ROp::SUBI_I4: case ROp::MULI_I4:
    case ROp::ADDI_I8: case ROp::SUBI_I8: case ROp::MULI_I8:
    case ROp::ADDI_R8: case ROp::MULI_R8:
    case ROp::AND_I4: case ROp::OR_I4: case ROp::XOR_I4: case ROp::NOT_I4:
    case ROp::SHL_I4: case ROp::SHR_I4: case ROp::SHRU_I4:
    case ROp::AND_I8: case ROp::OR_I8: case ROp::XOR_I8: case ROp::NOT_I8:
    case ROp::SHL_I8: case ROp::SHR_I8: case ROp::SHRU_I8:
    case ROp::SHLI_I4: case ROp::SHRI_I4: case ROp::SHLI_I8: case ROp::SHRI_I8:
    case ROp::ANDI_I4:
    case ROp::CEQ_I4: case ROp::CGT_I4: case ROp::CLT_I4:
    case ROp::CEQ_I8: case ROp::CGT_I8: case ROp::CLT_I8:
    case ROp::CEQ_R4: case ROp::CGT_R4: case ROp::CLT_R4:
    case ROp::CEQ_R8: case ROp::CGT_R8: case ROp::CLT_R8:
    case ROp::CEQ_REF:
    case ROp::CV_I4_I8: case ROp::CV_I4_R4: case ROp::CV_I4_R8:
    case ROp::CV_I8_I4: case ROp::CV_I8_R4: case ROp::CV_I8_R8:
    case ROp::CV_R4_I4: case ROp::CV_R4_I8: case ROp::CV_R4_R8:
    case ROp::CV_R8_I4: case ROp::CV_R8_I8: case ROp::CV_R8_R4:
    case ROp::SEXT8: case ROp::ZEXT8: case ROp::SEXT16: case ROp::ZEXT16:
      return true;
    default:
      return false;
  }
}

/// Operand roles for copy propagation / liveness.
struct Operands {
  std::int32_t uses[4];
  int nuses = 0;
  std::int32_t def = -1;  // register defined, -1 if none
};

inline Operands operands_of(const RInstr& in,
                            const std::vector<std::int32_t>& pool) {
  Operands o{};
  auto use = [&](std::int32_t r) {
    if (r >= 0) o.uses[o.nuses++] = r;
  };
  switch (in.op) {
    case ROp::NOP_R:
    case ROp::SAFEPOINT:
    case ROp::ENDFINALLY_R:
    case ROp::LEAVE_R:
    case ROp::JMP:
    case ROp::JMPB:
      break;
    case ROp::VECLOOP:
      // Operands live in the RCode::vec_loops side table (in.a indexes it);
      // the instruction neither defines nor uses allocator-visible regs here.
      break;
    case ROp::MOV:
    case ROp::MEMLD:
    case ROp::MEMST:
      o.def = in.d;
      use(in.a);
      break;
    case ROp::LDI:
      o.def = in.d;
      break;
    case ROp::LDSTR_R:
    case ROp::NEWOBJ_R:
      o.def = in.d;
      break;
    case ROp::RET_R:
    case ROp::THROW_R:
      use(in.a);
      break;
    case ROp::JZ_I4:
    case ROp::JNZ_I4:
    case ROp::JZ_I8:
    case ROp::JNZ_I8:
    case ROp::JZ_REF:
    case ROp::JNZ_REF:
      use(in.a);
      break;
    case ROp::JEQI_I4:
    case ROp::JNEI_I4:
    case ROp::JLTI_I4:
    case ROp::JLEI_I4:
    case ROp::JGTI_I4:
    case ROp::JGEI_I4:
      use(in.a);
      break;
    case ROp::JEQ_I4: case ROp::JNE_I4: case ROp::JLT_I4:
    case ROp::JLE_I4: case ROp::JGT_I4: case ROp::JGE_I4:
    case ROp::JEQ_I8: case ROp::JNE_I8: case ROp::JLT_I8:
    case ROp::JLE_I8: case ROp::JGT_I8: case ROp::JGE_I8:
    case ROp::JEQ_R4: case ROp::JNE_R4: case ROp::JLT_R4:
    case ROp::JLE_R4: case ROp::JGT_R4: case ROp::JGE_R4:
    case ROp::JEQ_R8: case ROp::JNE_R8: case ROp::JLT_R8:
    case ROp::JLE_R8: case ROp::JGT_R8: case ROp::JGE_R8:
    case ROp::JEQ_REF: case ROp::JNE_REF:
      use(in.a);
      use(in.b);
      break;
    case ROp::LDSFLD_R:
      o.def = in.d;  // a/b are class/field ids, not registers
      break;
    case ROp::CHK_BOUNDS:
    case ROp::JLT_LEN:
      use(in.a);
      use(in.b);
      break;
    case ROp::CALL_R:
    case ROp::CALLINTR_R: {
      o.def = in.d;
      // Call arguments come from the pool; handled separately by the passes
      // (they rewrite/mark pool entries directly).
      (void)pool;
      break;
    }
    case ROp::STFLD_R:
      use(in.a);
      use(in.d);  // d = source
      break;
    case ROp::CARDMARK:
      use(in.a);  // object carded; no def
      break;
    case ROp::STSFLD_R:
      use(in.d);
      break;
    case ROp::STELEM_I4: case ROp::STELEM_I8: case ROp::STELEM_R4:
    case ROp::STELEM_R8: case ROp::STELEM_REF:
    case ROp::STELEMU_I4: case ROp::STELEMU_I8: case ROp::STELEMU_R4:
    case ROp::STELEMU_R8: case ROp::STELEMU_REF:
      use(in.a);
      use(in.b);
      use(in.d);  // d = source
      break;
    case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
    case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW:
      o.def = in.d;
      use(in.a);
      use(in.b);
      use(static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask));
      break;
    case ROp::STEL2_I4: case ROp::STEL2_I8: case ROp::STEL2_R4:
    case ROp::STEL2_R8: case ROp::STEL2_REF: case ROp::STEL2_SLOW:
      use(in.a);
      use(in.b);
      use(static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask));
      use(static_cast<std::int32_t>((in.imm.i64 >> kRegFieldBits) &
                                    kRegFieldMask));
      break;
    default:
      // Generic three-address shape: d <- op(a, b).
      o.def = in.d;
      use(in.a);
      if (in.b >= 0 && in.op != ROp::NEWARR_R && in.op != ROp::LDFLD_R &&
          in.op != ROp::BOX_R && in.op != ROp::UNBOX_R &&
          in.op != ROp::NEWMAT_R) {
        use(in.b);
      }
      if (in.op == ROp::NEWMAT_R) {
        use(in.b);  // cols register (excluded above as a non-register field)
      }
      break;
  }
  return o;
}

}  // namespace hpcnet::vm::regir

#include "support/java_random.hpp"

#include <cmath>
#include <cstdlib>

namespace hpcnet::support {

void JavaRandom::set_seed(std::int64_t seed) {
  seed_ = (seed ^ kMultiplier) & kMask;
  have_next_gaussian_ = false;
}

std::int32_t JavaRandom::next(int bits) {
  // Java relies on wrapping 64-bit multiplication; cast through unsigned to
  // keep the arithmetic well-defined in C++.
  auto s = static_cast<std::uint64_t>(seed_);
  s = (s * static_cast<std::uint64_t>(kMultiplier) +
       static_cast<std::uint64_t>(kAddend)) &
      static_cast<std::uint64_t>(kMask);
  seed_ = static_cast<std::int64_t>(s);
  return static_cast<std::int32_t>(s >> (48 - bits));
}

std::int32_t JavaRandom::next_int() { return next(32); }

std::int32_t JavaRandom::next_int(std::int32_t bound) {
  // Matches java.util.Random.nextInt(int): power-of-two fast path plus
  // rejection sampling for the general case.
  if ((bound & -bound) == bound) {  // power of 2
    return static_cast<std::int32_t>(
        (static_cast<std::int64_t>(bound) * next(31)) >> 31);
  }
  std::int32_t bits, val;
  do {
    bits = next(31);
    val = bits % bound;
  } while (bits - val + (bound - 1) < 0);
  return val;
}

std::int64_t JavaRandom::next_long() {
  // Unsigned math mirrors Java's wrapping ((long)next(32) << 32) + next(32).
  auto hi = static_cast<std::uint64_t>(static_cast<std::int64_t>(next(32)))
            << 32;
  auto lo = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(next(32)));
  // Java adds the sign-extended low word.
  auto lo_signed = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(lo)));
  return static_cast<std::int64_t>(hi + lo_signed);
}

bool JavaRandom::next_boolean() { return next(1) != 0; }

float JavaRandom::next_float() {
  return static_cast<float>(next(24)) / static_cast<float>(1 << 24);
}

double JavaRandom::next_double() {
  return static_cast<double>((static_cast<std::int64_t>(next(26)) << 27) +
                             next(27)) *
         0x1.0p-53;
}

double JavaRandom::next_gaussian() {
  if (have_next_gaussian_) {
    have_next_gaussian_ = false;
    return next_gaussian_;
  }
  double v1, v2, s;
  do {
    v1 = 2 * next_double() - 1;
    v2 = 2 * next_double() - 1;
    s = v1 * v1 + v2 * v2;
  } while (s >= 1 || s == 0);
  const double multiplier = std::sqrt(-2 * std::log(s) / s);
  next_gaussian_ = v2 * multiplier;
  have_next_gaussian_ = true;
  return v1 * multiplier;
}

void SciMarkRandom::initialize(int seed) {
  seed_ = seed;
  int jseed = std::abs(seed);
  if (jseed > kM1) jseed = kM1;
  if (jseed % 2 == 0) --jseed;
  const int k0 = 9069 % kM2;
  const int k1 = 9069 / kM2;
  int j0 = jseed % kM2;
  int j1 = jseed / kM2;
  for (int iloop = 0; iloop < 17; ++iloop) {
    jseed = j0 * k0;
    j1 = (jseed / kM2 + j0 * k1 + j1 * k0) % (kM2 / 2);
    j0 = jseed % kM2;
    m_[iloop] = j0 + kM2 * j1;
  }
  i_ = 4;
  j_ = 16;
}

double SciMarkRandom::next_double() {
  int k = m_[i_] - m_[j_];
  if (k < 0) k += kM1;
  m_[j_] = k;
  i_ = (i_ == 0) ? 16 : i_ - 1;
  j_ = (j_ == 0) ? 16 : j_ - 1;
  return (1.0 / kM1) * static_cast<double>(k);
}

void SciMarkRandom::next_doubles(double* out, int n) {
  for (int idx = 0; idx < n; ++idx) out[idx] = next_double();
}

}  // namespace hpcnet::support

#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hpcnet::support {

namespace {
double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return 0.5 * (hi + v[mid - 1]);
}
}  // namespace

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.median = median_of(samples);
  return s;
}

std::vector<double> find_outliers(const std::vector<double>& samples,
                                  double k) {
  std::vector<double> out;
  if (samples.size() < 3) return out;
  const double med = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double x : samples) dev.push_back(std::fabs(x - med));
  const double mad = median_of(dev);
  if (mad == 0) return out;
  for (double x : samples) {
    if (std::fabs(x - med) / mad > k) out.push_back(x);
  }
  return out;
}

double representative(const std::vector<double>& samples) {
  return median_of(samples);
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace hpcnet::support

#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hpcnet::support {

namespace {
double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return 0.5 * (hi + v[mid - 1]);
}
}  // namespace

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.median = median_of(samples);
  return s;
}

std::vector<double> find_outliers(const std::vector<double>& samples,
                                  double k) {
  std::vector<double> out;
  if (samples.size() < 3) return out;
  const double med = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (double x : samples) dev.push_back(std::fabs(x - med));
  const double mad = median_of(dev);
  if (mad == 0) return out;
  for (double x : samples) {
    if (std::fabs(x - med) / mad > k) out.push_back(x);
  }
  return out;
}

double representative(const std::vector<double>& samples) {
  return median_of(samples);
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

namespace {

std::size_t bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  std::size_t bits = 0;
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits < Histogram::kBuckets ? bits : Histogram::kBuckets - 1;
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  total_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ += other.total_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void Histogram::reset() { *this = Histogram{}; }

std::uint64_t Histogram::bucket_floor(std::size_t i) {
  return i == 0 ? 0 : 1ull << (i - 1);
}

std::uint64_t Histogram::bucket_ceil(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return ~0ull;
  return (1ull << i) - 1;
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the sample at percentile p (1-based, nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t ceil = bucket_ceil(i);
      return ceil < max_ ? ceil : max_;
    }
  }
  return max_;
}

}  // namespace hpcnet::support

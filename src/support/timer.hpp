// Monotonic wall-clock timing helpers shared by the JGF instrumentor and the
// benchmark harnesses. The paper keeps support code (timers, RNG) identical
// across the Java and C# versions of every benchmark; we mirror that by
// funnelling all measurement through this one clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace hpcnet::support {

/// Nanoseconds since an arbitrary (per-process) steady epoch.
std::int64_t now_ns();

/// Seconds between two now_ns() readings.
double elapsed_seconds(std::int64_t start_ns, std::int64_t end_ns);

/// A simple start/stop accumulating stopwatch, modelled on the JGF timer:
/// repeated start()/stop() pairs accumulate into time(); reset() clears.
class Stopwatch {
 public:
  void start() { start_ns_ = now_ns(); running_ = true; }
  void stop() {
    if (running_) { accum_ns_ += now_ns() - start_ns_; running_ = false; }
  }
  void reset() { accum_ns_ = 0; running_ = false; }

  /// Accumulated time in seconds (excludes a currently-running interval).
  double seconds() const { return static_cast<double>(accum_ns_) * 1e-9; }
  std::int64_t nanos() const { return accum_ns_; }
  bool running() const { return running_; }

 private:
  std::int64_t start_ns_ = 0;
  std::int64_t accum_ns_ = 0;
  bool running_ = false;
};

}  // namespace hpcnet::support

// Table/CSV reporting in the layout of the paper's graphs: one row per
// operation, one column per virtual machine. Both the bench binaries and the
// example programs print through this so the output lines up with the graphs
// in the paper (ops/sec for micro-benchmarks, MFlops for SciMark).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hpcnet::support {

/// A rectangular results table: columns are engines/VMs, rows are benchmark
/// operations, cells are scores. Missing cells render as "-".
class ResultTable {
 public:
  explicit ResultTable(std::string title) : title_(std::move(title)) {}

  /// Returns the column index (creating it if needed).
  std::size_t column(const std::string& name);
  /// Returns the row index (creating it if needed).
  std::size_t row(const std::string& name);

  void set(const std::string& row_name, const std::string& col_name,
           double value);
  /// NaN if unset.
  double get(const std::string& row_name, const std::string& col_name) const;
  bool has(const std::string& row_name, const std::string& col_name) const;

  const std::string& title() const { return title_; }
  const std::vector<std::string>& rows() const { return row_names_; }
  const std::vector<std::string>& columns() const { return col_names_; }

  /// Pretty-print with aligned columns, in scientific notation like the
  /// paper's axis labels (e.g. 2.50E+08).
  void print(std::ostream& os) const;
  /// Machine-readable CSV (title as a comment line).
  void print_csv(std::ostream& os) const;
  /// Machine-readable JSON object:
  ///   {"title": ..., "columns": [...], "rows": [...], "cells": [[...]]}
  /// Cells are row-major; unset cells render as null. Telemetry summaries and
  /// the bench tables share this one machine-readable path.
  void print_json(std::ostream& os) const;

  /// Normalize every cell by the named column (e.g. relative-to-native),
  /// returning a new table. Cells in the reference column become 1.0.
  ResultTable normalized_to(const std::string& col_name,
                            const std::string& new_title) const;

 private:
  std::string title_;
  std::vector<std::string> row_names_;
  std::vector<std::string> col_names_;
  std::vector<std::vector<double>> cells_;  // [row][col], NaN = unset
};

/// Formats a double as the paper's axes do: "3.50E+08".
std::string sci(double v);

/// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

}  // namespace hpcnet::support

#include "support/reporter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>

namespace hpcnet::support {

namespace {
constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();
}

std::size_t ResultTable::column(const std::string& name) {
  for (std::size_t i = 0; i < col_names_.size(); ++i) {
    if (col_names_[i] == name) return i;
  }
  col_names_.push_back(name);
  for (auto& r : cells_) r.push_back(kUnset);
  return col_names_.size() - 1;
}

std::size_t ResultTable::row(const std::string& name) {
  for (std::size_t i = 0; i < row_names_.size(); ++i) {
    if (row_names_[i] == name) return i;
  }
  row_names_.push_back(name);
  cells_.emplace_back(col_names_.size(), kUnset);
  return row_names_.size() - 1;
}

void ResultTable::set(const std::string& row_name, const std::string& col_name,
                      double value) {
  const std::size_t r = row(row_name);
  const std::size_t c = column(col_name);
  cells_[r][c] = value;
}

double ResultTable::get(const std::string& row_name,
                        const std::string& col_name) const {
  for (std::size_t r = 0; r < row_names_.size(); ++r) {
    if (row_names_[r] != row_name) continue;
    for (std::size_t c = 0; c < col_names_.size(); ++c) {
      if (col_names_[c] == col_name) return cells_[r][c];
    }
  }
  return kUnset;
}

bool ResultTable::has(const std::string& row_name,
                      const std::string& col_name) const {
  return !std::isnan(get(row_name, col_name));
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2E", v);
  return buf;
}

void ResultTable::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  std::size_t name_w = 4;
  for (const auto& r : row_names_) name_w = std::max(name_w, r.size());
  os << std::left << std::setw(static_cast<int>(name_w) + 2) << "";
  for (const auto& c : col_names_) {
    os << std::right << std::setw(std::max<int>(12, static_cast<int>(c.size()) + 2))
       << c;
  }
  os << "\n";
  for (std::size_t r = 0; r < row_names_.size(); ++r) {
    os << std::left << std::setw(static_cast<int>(name_w) + 2) << row_names_[r];
    for (std::size_t c = 0; c < col_names_.size(); ++c) {
      const int w =
          std::max<int>(12, static_cast<int>(col_names_[c].size()) + 2);
      if (std::isnan(cells_[r][c])) {
        os << std::right << std::setw(w) << "-";
      } else {
        os << std::right << std::setw(w) << sci(cells_[r][c]);
      }
    }
    os << "\n";
  }
}

void ResultTable::print_csv(std::ostream& os) const {
  os << "# " << title_ << "\n";
  os << "benchmark";
  for (const auto& c : col_names_) os << "," << c;
  os << "\n";
  for (std::size_t r = 0; r < row_names_.size(); ++r) {
    os << row_names_[r];
    for (std::size_t c = 0; c < col_names_.size(); ++c) {
      os << ",";
      if (!std::isnan(cells_[r][c])) os << cells_[r][c];
    }
    os << "\n";
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void ResultTable::print_json(std::ostream& os) const {
  os << "{\"title\":\"" << json_escape(title_) << "\",\"columns\":[";
  for (std::size_t c = 0; c < col_names_.size(); ++c) {
    os << (c ? "," : "") << "\"" << json_escape(col_names_[c]) << "\"";
  }
  os << "],\"rows\":[";
  for (std::size_t r = 0; r < row_names_.size(); ++r) {
    os << (r ? "," : "") << "\"" << json_escape(row_names_[r]) << "\"";
  }
  os << "],\"cells\":[";
  for (std::size_t r = 0; r < row_names_.size(); ++r) {
    os << (r ? "," : "") << "[";
    for (std::size_t c = 0; c < col_names_.size(); ++c) {
      if (c) os << ",";
      if (std::isnan(cells_[r][c])) {
        os << "null";
      } else {
        // %.17g round-trips doubles; infinities are not valid JSON numbers.
        char buf[40];
        if (std::isinf(cells_[r][c])) {
          std::snprintf(buf, sizeof buf, "null");
        } else {
          std::snprintf(buf, sizeof buf, "%.17g", cells_[r][c]);
        }
        os << buf;
      }
    }
    os << "]";
  }
  os << "]}\n";
}

ResultTable ResultTable::normalized_to(const std::string& col_name,
                                       const std::string& new_title) const {
  ResultTable out(new_title);
  std::size_t ref = col_names_.size();
  for (std::size_t c = 0; c < col_names_.size(); ++c) {
    if (col_names_[c] == col_name) ref = c;
  }
  for (std::size_t r = 0; r < row_names_.size(); ++r) {
    const double denom = ref < col_names_.size() ? cells_[r][ref] : kUnset;
    for (std::size_t c = 0; c < col_names_.size(); ++c) {
      if (!std::isnan(cells_[r][c]) && !std::isnan(denom) && denom != 0) {
        out.set(row_names_[r], col_names_[c], cells_[r][c] / denom);
      }
    }
  }
  return out;
}

}  // namespace hpcnet::support

// Small statistics helpers used by the benchmark harnesses: the paper ran
// each micro-benchmark 100 times and inspected the samples for outliers
// before reporting a representative single run. OutlierFilter implements the
// same screen (median absolute deviation based).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcnet::support {

struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
  std::size_t count = 0;
};

/// Summary statistics for a set of samples. Empty input yields all zeros.
Summary summarize(const std::vector<double>& samples);

/// Returns the samples whose distance from the median exceeds
/// `k` * MAD (median absolute deviation). k=3.5 is the usual screen.
std::vector<double> find_outliers(const std::vector<double>& samples,
                                  double k = 3.5);

/// A representative value per the paper's procedure: check for outliers,
/// then report the median sample.
double representative(const std::vector<double>& samples);

/// Geometric mean (used for the SciMark composite score).
double geometric_mean(const std::vector<double>& values);

/// Fixed-bucket power-of-two histogram for latency-style values (ns).
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
/// Recording is a few arithmetic ops and one array increment, so it is cheap
/// enough for telemetry hot paths; count/total/min/max are exact, percentiles
/// are bucket-resolution approximations.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value);
  void merge(const Histogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(total_) / static_cast<double>(count_) : 0;
  }

  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_floor(std::size_t i);
  /// Inclusive upper bound of bucket i.
  static std::uint64_t bucket_ceil(std::size_t i);

  /// Value below which `p` percent (0..100) of samples fall. Resolved to the
  /// containing bucket's upper bound, clamped to the exact max.
  std::uint64_t percentile(double p) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace hpcnet::support

// Small statistics helpers used by the benchmark harnesses: the paper ran
// each micro-benchmark 100 times and inspected the samples for outliers
// before reporting a representative single run. OutlierFilter implements the
// same screen (median absolute deviation based).
#pragma once

#include <cstddef>
#include <vector>

namespace hpcnet::support {

struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
  std::size_t count = 0;
};

/// Summary statistics for a set of samples. Empty input yields all zeros.
Summary summarize(const std::vector<double>& samples);

/// Returns the samples whose distance from the median exceeds
/// `k` * MAD (median absolute deviation). k=3.5 is the usual screen.
std::vector<double> find_outliers(const std::vector<double>& samples,
                                  double k = 3.5);

/// A representative value per the paper's procedure: check for outliers,
/// then report the median sample.
double representative(const std::vector<double>& samples);

/// Geometric mean (used for the SciMark composite score).
double geometric_mean(const std::vector<double>& values);

}  // namespace hpcnet::support

#include "support/timer.hpp"

namespace hpcnet::support {

std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock::now().time_since_epoch())
      .count();
}

double elapsed_seconds(std::int64_t start_ns, std::int64_t end_ns) {
  return static_cast<double>(end_ns - start_ns) * 1e-9;
}

}  // namespace hpcnet::support

// Bit-exact port of java.util.Random (the 48-bit LCG defined by the Java
// Platform spec). The paper deliberately kept the random number generator
// identical between the Java and C# benchmark sources so that all runtimes
// compute the same numeric results; we keep the same discipline across the
// native kernels and the CIL kernels so results can be cross-validated.
//
// Also provides the Gaussian (Box-Muller polar) method that the paper notes
// had to be hand-ported because the CLI base library lacks it.
#pragma once

#include <cstdint>

namespace hpcnet::support {

class JavaRandom {
 public:
  /// Seeds exactly as java.util.Random(long seed) does.
  explicit JavaRandom(std::int64_t seed = 0) { set_seed(seed); }

  void set_seed(std::int64_t seed);

  /// next(bits): core LCG step, returns the high `bits` bits.
  std::int32_t next(int bits);

  std::int32_t next_int();
  /// Uniform in [0, bound), bound > 0; matches Java's rejection algorithm.
  std::int32_t next_int(std::int32_t bound);
  std::int64_t next_long();
  bool next_boolean();
  float next_float();
  double next_double();
  /// Standard normal deviate via the polar method (java.util.Random layout).
  double next_gaussian();

  /// Raw 48-bit internal state (for tests).
  std::int64_t state() const { return seed_; }

 private:
  std::int64_t seed_ = 0;
  double next_gaussian_ = 0.0;
  bool have_next_gaussian_ = false;

  static constexpr std::int64_t kMultiplier = 0x5DEECE66DLL;
  static constexpr std::int64_t kAddend = 0xBLL;
  static constexpr std::int64_t kMask = (1LL << 48) - 1;
};

/// The SciMark 2.0 `Random` class is *not* java.util.Random: it is a lagged
/// Fibonacci generator (Knuth) that the benchmark uses for MonteCarlo, LU and
/// SparseCompRow input generation. Ported bit-exactly from the reference
/// SciMark 2.0 Java source so kernel inputs match across engines.
class SciMarkRandom {
 public:
  explicit SciMarkRandom(int seed = 101010) { initialize(seed); }

  double next_double();
  void next_doubles(double* out, int n);

 private:
  void initialize(int seed);

  int seed_ = 0;
  int m_[17] = {};
  int i_ = 4;
  int j_ = 16;

  static constexpr int kMdig = 32;
  // m1 = 2^(mdig-2) + (2^(mdig-2) - 1) = 2^31 - 1
  static constexpr int kM1 = (1 << (kMdig - 2)) + ((1 << (kMdig - 2)) - 1);
  static constexpr int kM2 = 1 << (kMdig / 2);
};

}  // namespace hpcnet::support

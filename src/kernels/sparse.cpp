#include "kernels/scimark.hpp"

namespace hpcnet::kernels::sparse {

double num_flops(int n, int nz, int num_iterations) {
  // SciMark rounds nz down to a multiple of n (nr nonzeros per row).
  const int actual_nz = (nz / n) * n;
  return static_cast<double>(actual_nz) * 2.0 *
         static_cast<double>(num_iterations);
}

Matrix make_matrix(int n, int nz, support::SciMarkRandom& rng) {
  Matrix a;
  a.n = n;
  const int nr = nz / n;   // nonzeros per row
  const int anz = nr * n;  // actual nonzeros
  a.val.resize(static_cast<std::size_t>(anz));
  rng.next_doubles(a.val.data(), anz);
  a.col.resize(static_cast<std::size_t>(anz));
  a.row.resize(static_cast<std::size_t>(n) + 1);
  a.row[0] = 0;
  for (int r = 0; r < n; ++r) {
    const std::int32_t rowr = a.row[static_cast<std::size_t>(r)];
    a.row[static_cast<std::size_t>(r) + 1] = rowr + nr;
    int step = r / nr;
    if (step < 1) step = 1;  // take at least unit steps
    for (int i = 0; i < nr; ++i) {
      a.col[static_cast<std::size_t>(rowr + i)] = i * step;
    }
  }
  return a;
}

void matmult(std::vector<double>& y, const Matrix& a,
             const std::vector<double>& x, int num_iterations) {
  const int m = static_cast<int>(a.row.size()) - 1;
  for (int reps = 0; reps < num_iterations; ++reps) {
    for (int r = 0; r < m; ++r) {
      double sum = 0.0;
      const std::int32_t row_r = a.row[static_cast<std::size_t>(r)];
      const std::int32_t row_rp1 = a.row[static_cast<std::size_t>(r) + 1];
      for (std::int32_t i = row_r; i < row_rp1; ++i) {
        sum += x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(i)])] *
               a.val[static_cast<std::size_t>(i)];
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  }
}

double checksum(int n, int nz, int iterations) {
  support::SciMarkRandom rng(101010);
  std::vector<double> x(static_cast<std::size_t>(n));
  rng.next_doubles(x.data(), n);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  const Matrix a = make_matrix(n, nz, rng);
  matmult(y, a, x, iterations);
  double sum = 0;
  for (double v : y) sum += v;
  return sum;
}

}  // namespace hpcnet::kernels::sparse

// JGF 3D ray tracer: a scene of 64 spheres lit by one light, rendered at
// n x n with shadows and specular reflection (depth-limited), checksummed
// over the produced pixel words exactly as the JGF validation does.
#include <cmath>
#include <vector>

#include "kernels/jgf.hpp"

namespace hpcnet::kernels::raytracer {

namespace {

struct Vec {
  double x = 0, y = 0, z = 0;

  Vec operator+(const Vec& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec operator-(const Vec& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
  Vec normalized() const {
    const double n = std::sqrt(norm2());
    return n > 0 ? *this * (1.0 / n) : *this;
  }
};

struct Sphere {
  Vec center;
  double radius = 0;
  Vec color;
  double kd = 0.8;    // diffuse
  double ks = 0.3;    // specular reflection weight
};

struct Scene {
  std::vector<Sphere> spheres;
  Vec light;
  Vec eye;
};

Scene make_scene() {
  // 64 spheres on a 4x4x4 lattice (the JGF scene shape).
  Scene s;
  s.light = {100, 100, -50};
  s.eye = {0, 0, -30};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) {
        Sphere sp;
        sp.center = {i * 4.0 - 6.0, j * 4.0 - 6.0, k * 4.0 + 10.0};
        sp.radius = 1.4;
        sp.color = {0.3 + 0.23 * i, 0.3 + 0.23 * j, 0.3 + 0.23 * k};
        s.spheres.push_back(sp);
      }
    }
  }
  return s;
}

struct Hit {
  const Sphere* sphere = nullptr;
  double t = 1e30;
};

Hit intersect(const Scene& s, const Vec& origin, const Vec& dir) {
  Hit h;
  for (const Sphere& sp : s.spheres) {
    const Vec oc = origin - sp.center;
    const double b = oc.dot(dir);
    const double c = oc.norm2() - sp.radius * sp.radius;
    const double disc = b * b - c;
    if (disc <= 0) continue;
    const double sq = std::sqrt(disc);
    double t = -b - sq;
    if (t < 1e-6) t = -b + sq;
    if (t > 1e-6 && t < h.t) {
      h.t = t;
      h.sphere = &sp;
    }
  }
  return h;
}

Vec shade(const Scene& s, const Vec& origin, const Vec& dir, int depth) {
  const Hit h = intersect(s, origin, dir);
  if (h.sphere == nullptr) return {0.05, 0.05, 0.08};  // background

  const Vec p = origin + dir * h.t;
  const Vec n = (p - h.sphere->center).normalized();
  const Vec to_light = (s.light - p).normalized();

  // Shadow ray.
  double light_vis = 1.0;
  const Hit sh = intersect(s, p + n * 1e-4, to_light);
  if (sh.sphere != nullptr &&
      sh.t * sh.t < (s.light - p).norm2()) {
    light_vis = 0.0;
  }

  const double diff = std::max(0.0, n.dot(to_light)) * light_vis;
  Vec color = h.sphere->color * (0.1 + h.sphere->kd * diff);

  if (depth > 0 && h.sphere->ks > 0) {
    const Vec refl = dir - n * (2.0 * dir.dot(n));
    const Vec rc = shade(s, p + n * 1e-4, refl.normalized(), depth - 1);
    color = color + rc * h.sphere->ks;
  }
  return color;
}

std::int32_t to_pixel(const Vec& c) {
  auto ch = [](double v) {
    const int x = static_cast<int>(v * 255.0);
    return x < 0 ? 0 : x > 255 ? 255 : x;
  };
  return (ch(c.x) << 16) | (ch(c.y) << 8) | ch(c.z);
}

}  // namespace

std::int64_t render_image(int n, std::vector<std::int32_t>& pixels) {
  const Scene s = make_scene();
  pixels.assign(static_cast<std::size_t>(n) * n, 0);
  std::int64_t checksum = 0;
  const double view = 12.0;
  for (int py = 0; py < n; ++py) {
    for (int px = 0; px < n; ++px) {
      const double sx = (px + 0.5) / n * 2 - 1;
      const double sy = (py + 0.5) / n * 2 - 1;
      const Vec dir = Vec{sx * view, sy * view, 30.0}.normalized();
      const Vec c = shade(s, s.eye, dir, 2);
      const std::int32_t pix = to_pixel(c);
      pixels[static_cast<std::size_t>(py) * n + px] = pix;
      checksum += pix;
    }
  }
  return checksum;
}

std::int64_t render(int n) {
  std::vector<std::int32_t> pixels;
  return render_image(n, pixels);
}

}  // namespace hpcnet::kernels::raytracer

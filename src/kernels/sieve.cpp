#include <vector>

#include "kernels/jgf.hpp"

namespace hpcnet::kernels::sieve {

int count_primes(int n) {
  if (n < 2) return 0;
  std::vector<std::uint8_t> composite(static_cast<std::size_t>(n) + 1, 0);
  int count = 0;
  for (int i = 2; i <= n; ++i) {
    if (composite[static_cast<std::size_t>(i)]) continue;
    ++count;
    for (std::int64_t j = static_cast<std::int64_t>(i) * i; j <= n; j += i) {
      composite[static_cast<std::size_t>(j)] = 1;
    }
  }
  return count;
}

}  // namespace hpcnet::kernels::sieve

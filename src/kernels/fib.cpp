#include "kernels/jgf.hpp"

namespace hpcnet::kernels::fib {

std::int64_t compute(int n) {
  if (n < 2) return n;
  return compute(n - 1) + compute(n - 2);
}

double num_calls(int n) {
  // calls(n) = 2*fib(n+1) - 1 for the naive recursion.
  double a = 0, b = 1;  // fib(0), fib(1)
  for (int i = 0; i < n; ++i) {
    const double t = a + b;
    a = b;
    b = t;
  }
  return 2 * b - 1;
}

}  // namespace hpcnet::kernels::fib

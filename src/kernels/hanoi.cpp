#include "kernels/jgf.hpp"

namespace hpcnet::kernels::hanoi {

namespace {
std::int64_t move(int n, int from, int to, int via) {
  if (n == 1) return 1;
  return move(n - 1, from, via, to) + 1 + move(n - 1, via, to, from);
}
}  // namespace

std::int64_t solve(int n) {
  if (n <= 0) return 0;
  return move(n, 0, 2, 1);
}

}  // namespace hpcnet::kernels::hanoi

// Connect-4 alpha-beta search (JGF Search, derived from Fhourstones):
// bitboard move generation, a transposition table, and depth-limited
// negamax with alpha-beta pruning from the opening position. Memory- and
// integer-intensive, as the paper describes.
#include <cstdint>
#include <vector>

#include "kernels/jgf.hpp"

namespace hpcnet::kernels::search {

namespace {

// Board: 7 columns x 6 rows; bitboard with 7 bits per column (top bit is a
// sentinel), position = own stones, mask = all stones.
constexpr int kWidth = 7;
constexpr int kHeight = 6;

bool has_won(std::uint64_t pos) {
  // Horizontal, vertical and both diagonals.
  for (int shift : {1, kHeight + 1, kHeight, kHeight + 2}) {
    const std::uint64_t m = pos & (pos >> shift);
    if ((m & (m >> (2 * shift))) != 0) return true;
  }
  return false;
}

constexpr std::uint64_t bottom_mask(int col) {
  return 1ULL << (col * (kHeight + 1));
}
constexpr std::uint64_t column_mask(int col) {
  return ((1ULL << kHeight) - 1) << (col * (kHeight + 1));
}

struct Table {
  // Simple fixed-size replace-always transposition table, as the JGF
  // benchmark keeps one (it is what makes the kernel memory-intensive).
  struct Entry {
    std::uint64_t key = 0;
    std::int8_t value = 0;
    std::int8_t depth = -1;
  };
  std::vector<Entry> entries;
  explicit Table(std::size_t size) : entries(size) {}
  Entry* find(std::uint64_t key) {
    return &entries[key % entries.size()];
  }
};

class Searcher {
 public:
  Searcher() : table_(1 << 20) {}

  int negamax(std::uint64_t pos, std::uint64_t mask, int depth, int alpha,
              int beta) {
    ++nodes_;
    if (depth == 0) return 0;

    // Immediate win available?
    for (int c = 0; c < kWidth; ++c) {
      if ((mask & column_mask(c)) == column_mask(c)) continue;
      const std::uint64_t mv = (mask + bottom_mask(c)) & column_mask(c);
      if (has_won(pos | mv)) return (kWidth * kHeight + 2 - popcount(mask)) / 2;
    }

    const std::uint64_t key = pos * 2 + mask;
    Table::Entry* e = table_.find(key);
    if (e->key == key && e->depth >= depth) return e->value;

    int best = -kWidth * kHeight;
    static constexpr int order[kWidth] = {3, 2, 4, 1, 5, 0, 6};
    for (int oc = 0; oc < kWidth; ++oc) {
      const int c = order[oc];
      if ((mask & column_mask(c)) == column_mask(c)) continue;  // full
      const std::uint64_t mv = (mask + bottom_mask(c)) & column_mask(c);
      const std::uint64_t nmask = mask | mv;
      const int v = -negamax(mask ^ pos, nmask, depth - 1, -beta, -alpha);
      if (v > best) best = v;
      if (v > alpha) alpha = v;
      if (alpha >= beta) break;
    }
    if (best == -kWidth * kHeight) best = 0;  // board full: draw

    e->key = key;
    e->value = static_cast<std::int8_t>(best);
    e->depth = static_cast<std::int8_t>(depth);
    return best;
  }

  std::int64_t nodes() const { return nodes_; }

 private:
  static int popcount(std::uint64_t v) {
    int c = 0;
    while (v != 0) {
      v &= v - 1;
      ++c;
    }
    return c;
  }

  Table table_;
  std::int64_t nodes_ = 0;
};

}  // namespace

std::int64_t solve(int depth, int* score_out) {
  Searcher s;
  const int score =
      s.negamax(0, 0, depth, -kWidth * kHeight, kWidth * kHeight);
  if (score_out != nullptr) *score_out = score;
  return s.nodes();
}

}  // namespace hpcnet::kernels::search

#include <cmath>
#include <stdexcept>

#include "kernels/scimark.hpp"

namespace hpcnet::kernels::fft {

namespace {

int int_log2(int n) {
  int k = 1, log = 0;
  for (; k < n; k *= 2, ++log) {
  }
  if (n != (1 << log)) {
    throw std::invalid_argument("FFT: data length is not a power of 2");
  }
  return log;
}

void bitreverse(double* data, int n) {
  const int nm1 = n - 1;
  int j = 0;
  for (int i = 0; i < nm1; ++i) {
    const int ii = i << 1;
    const int jj = j << 1;
    int k = n >> 1;
    if (i < j) {
      const double tmp_real = data[ii];
      const double tmp_imag = data[ii + 1];
      data[ii] = data[jj];
      data[ii + 1] = data[jj + 1];
      data[jj] = tmp_real;
      data[jj + 1] = tmp_imag;
    }
    while (k <= j) {
      j -= k;
      k >>= 1;
    }
    j += k;
  }
}

void transform_internal(double* data, int size, int direction) {
  if (size == 0) return;
  const int n = size / 2;
  if (n == 1) return;
  const int logn = int_log2(n);
  bitreverse(data, n);

  // Danielson-Lanczos with the stable trig recurrence SciMark uses.
  int dual = 1;
  for (int bit = 0; bit < logn; ++bit, dual *= 2) {
    double w_real = 1.0;
    double w_imag = 0.0;
    const double theta = 2.0 * direction * M_PI / (2.0 * dual);
    const double s = std::sin(theta);
    const double t = std::sin(theta / 2.0);
    const double s2 = 2.0 * t * t;

    for (int b = 0; b < n; b += 2 * dual) {
      const int i = 2 * b;
      const int j = 2 * (b + dual);
      const double wd_real = data[j];
      const double wd_imag = data[j + 1];
      data[j] = data[i] - wd_real;
      data[j + 1] = data[i + 1] - wd_imag;
      data[i] += wd_real;
      data[i + 1] += wd_imag;
    }
    for (int a = 1; a < dual; ++a) {
      {
        const double tmp_real = w_real - s * w_imag - s2 * w_real;
        const double tmp_imag = w_imag + s * w_real - s2 * w_imag;
        w_real = tmp_real;
        w_imag = tmp_imag;
      }
      for (int b = 0; b < n; b += 2 * dual) {
        const int i = 2 * (b + a);
        const int j = 2 * (b + a + dual);
        const double z1_real = data[j];
        const double z1_imag = data[j + 1];
        const double wd_real = w_real * z1_real - w_imag * z1_imag;
        const double wd_imag = w_real * z1_imag + w_imag * z1_real;
        data[j] = data[i] - wd_real;
        data[j + 1] = data[i + 1] - wd_imag;
        data[i] += wd_real;
        data[i + 1] += wd_imag;
      }
    }
  }
}

}  // namespace

double num_flops(int n) {
  const double nd = n;
  double logn = 0;
  for (int k = 1; k < n; k *= 2) ++logn;
  return (5.0 * nd - 2) * logn + 2 * (nd + 1);
}

void transform(std::vector<double>& data) {
  transform_internal(data.data(), static_cast<int>(data.size()), -1);
}

void inverse(std::vector<double>& data) {
  transform_internal(data.data(), static_cast<int>(data.size()), +1);
  const int nd = static_cast<int>(data.size());
  const double norm = 1.0 / (nd / 2);
  for (int i = 0; i < nd; ++i) data[static_cast<std::size_t>(i)] *= norm;
}

double roundtrip_checksum(int n, int cycles) {
  support::SciMarkRandom rng(7);
  std::vector<double> data(static_cast<std::size_t>(2 * n));
  rng.next_doubles(data.data(), 2 * n);
  for (int c = 0; c < cycles; ++c) {
    transform(data);
    inverse(data);
  }
  return data[0];
}

double test(int n) {
  support::SciMarkRandom rng(7);
  std::vector<double> data(static_cast<std::size_t>(2 * n));
  rng.next_doubles(data.data(), 2 * n);
  std::vector<double> copy = data;
  transform(data);
  inverse(data);
  double diff = 0.0;
  for (int i = 0; i < 2 * n; ++i) {
    const double d = data[static_cast<std::size_t>(i)] -
                     copy[static_cast<std::size_t>(i)];
    diff += d * d;
  }
  return std::sqrt(diff / (2 * n));
}

}  // namespace hpcnet::kernels::fft

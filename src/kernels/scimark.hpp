// Native C++ ports of the SciMark 2.0 kernels (FFT, SOR, Monte Carlo,
// sparse matmul, LU) — the "C baseline" of the paper's Graphs 9-11 and the
// reference results the CIL versions validate against. Ported bit-for-bit
// from the reference Java/C sources, including the SciMark lagged-Fibonacci
// RNG, so the numeric outputs are comparable across every engine.
#pragma once

#include <cstdint>
#include <vector>

#include "support/java_random.hpp"

namespace hpcnet::kernels {

// ---------------------------------------------------------------------------
// FFT: one-dimensional complex transform over interleaved (re,im) data.
namespace fft {

/// Flop count of one forward+inverse pair per SciMark's accounting.
double num_flops(int n);
/// In-place forward transform of n complex values (data.size() == 2n).
void transform(std::vector<double>& data);
/// In-place inverse transform (including 1/n normalization).
void inverse(std::vector<double>& data);
/// Round-trip RMS error on a random vector of n complex values; must be
/// ~1e-15 for a correct implementation (SciMark's validation test).
double test(int n);
/// data[0] after `cycles` forward+inverse round trips over the seed-7 random
/// vector — the cross-engine validation value (sm.fft.run computes the same).
double roundtrip_checksum(int n, int cycles);

}  // namespace fft

// ---------------------------------------------------------------------------
// SOR: Jacobi successive over-relaxation on an M x N grid.
namespace sor {

double num_flops(int m, int n, int iterations);
/// G is row-major M x N.
void execute(double omega, std::vector<double>& g, int m, int n,
             int num_iterations);
/// Runs on a random grid; returns G[1][1] after `iterations` (a stable
/// checksum used for cross-engine validation).
double checksum(int n, int iterations);

/// Red-black ordered SOR: the parallelizable variant (the paper's stated
/// future work is porting the shared-memory JGF benchmarks; red-black makes
/// the parallel result deterministic and thread-count independent).
void execute_redblack(double omega, std::vector<double>& g, int m, int n,
                      int num_iterations);
double checksum_redblack(int n, int iterations);

}  // namespace sor

// ---------------------------------------------------------------------------
// Monte Carlo integration of the quarter circle (approximates pi).
namespace montecarlo {

double num_flops(int num_samples);
double integrate(int num_samples);

}  // namespace montecarlo

// ---------------------------------------------------------------------------
// Sparse matrix-vector multiply, compressed row storage.
namespace sparse {

struct Matrix {
  std::vector<double> val;
  std::vector<std::int32_t> row;  // size N+1
  std::vector<std::int32_t> col;
  int n = 0;
};

double num_flops(int n, int nz, int num_iterations);
/// Builds the SciMark synthetic sparsity structure (nz nonzeros, N rows).
Matrix make_matrix(int n, int nz, support::SciMarkRandom& rng);
void matmult(std::vector<double>& y, const Matrix& a,
             const std::vector<double>& x, int num_iterations);
/// Sum of y after `iterations` multiplies of a random system (validation).
double checksum(int n, int nz, int iterations);

}  // namespace sparse

// ---------------------------------------------------------------------------
// LU factorization with partial pivoting.
namespace lu {

double num_flops(int n);
/// Factors the row-major n x n matrix in place; pivot gets n entries.
/// Returns 0 on success, 1 on singularity.
int factor(std::vector<double>& a, int n, std::vector<std::int32_t>& pivot);
/// ||PA - LU|| infinity norm on a random matrix (validation; ~1e-12).
double residual(int n);
/// a[0] of the factored random matrix (cross-engine checksum).
double checksum(int n);

}  // namespace lu

}  // namespace hpcnet::kernels

// IDEA block cipher, ported from the JGF Crypt benchmark (IDEATest). The
// JGF version deliberately uses the simplified modular multiply (x*k mod
// 0x10001) with the matching extended-Euclid inverse, which round-trips for
// the generated key schedules; we keep that behaviour bit-for-bit.
#include <stdexcept>

#include "kernels/jgf.hpp"
#include "support/java_random.hpp"

namespace hpcnet::kernels::crypt {

namespace {

/// Multiplicative inverse mod 0x10001 (JGF's inv()).
std::int32_t inv(std::int32_t x) {
  std::int64_t t0, t1, q, y;
  if (x <= 1) return x;  // 0 and 1 are self-inverse
  t1 = 0x10001L / x;
  y = 0x10001L % x;
  if (y == 1) return static_cast<std::int32_t>((1 - t1) & 0xFFFF);
  t0 = 1;
  do {
    q = x / y;
    x = static_cast<std::int32_t>(x % y);
    t0 += q * t1;
    if (x == 1) return static_cast<std::int32_t>(t0);
    q = y / x;
    y = y % x;
    t1 += q * t0;
  } while (y != 1);
  return static_cast<std::int32_t>((1 - t1) & 0xFFFF);
}

/// IDEA multiplication mod 2^16+1 where the value 0 represents 2^16. The
/// JGF source uses the simplified a*k % 0x10001, which silently corrupts
/// blocks whenever an intermediate hits 0; we use the correct group
/// operation so the round trip holds for all inputs (inv(0)==0 still works,
/// since 2^16 == -1 is self-inverse mod 2^16+1).
std::int32_t mul16(std::int32_t a, std::int32_t k) {
  if (a == 0) return (0x10001 - k) & 0xFFFF;
  if (k == 0) return (0x10001 - a) & 0xFFFF;
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) * k % 0x10001L) & 0xFFFF);
}

}  // namespace

KeySchedule make_keys(std::uint64_t seed) {
  support::JavaRandom rng(static_cast<std::int64_t>(seed));
  std::array<std::int32_t, 8> userkey{};
  for (auto& k : userkey) {
    k = static_cast<std::int32_t>(
        static_cast<std::uint16_t>(rng.next_int()));
  }

  KeySchedule ks{};
  auto& Z = ks.encrypt;
  for (int i = 0; i < 8; ++i) Z[static_cast<std::size_t>(i)] = userkey[static_cast<std::size_t>(i)] & 0xFFFF;
  for (int i = 8; i < 52; ++i) {
    if ((i & 7) < 6) {
      Z[static_cast<std::size_t>(i)] =
          (((Z[static_cast<std::size_t>(i - 7)] & 0x7F) << 9) |
           (Z[static_cast<std::size_t>(i - 6)] >> 7)) & 0xFFFF;
    } else if ((i & 7) == 6) {
      Z[static_cast<std::size_t>(i)] =
          (((Z[static_cast<std::size_t>(i - 7)] & 0x7F) << 9) |
           (Z[static_cast<std::size_t>(i - 14)] >> 7)) & 0xFFFF;
    } else {
      Z[static_cast<std::size_t>(i)] =
          (((Z[static_cast<std::size_t>(i - 15)] & 0x7F) << 9) |
           (Z[static_cast<std::size_t>(i - 14)] >> 7)) & 0xFFFF;
    }
  }

  // Decryption schedule (JGF calcDecryptKey, including its round-order
  // asymmetry between the middle rounds and the final group).
  auto& DK = ks.decrypt;
  std::int32_t t1 = inv(Z[0]);
  std::int32_t t2 = -Z[1] & 0xFFFF;
  std::int32_t t3 = -Z[2] & 0xFFFF;
  DK[51] = inv(Z[3]);
  DK[50] = t3;
  DK[49] = t2;
  DK[48] = t1;
  int j = 47, k = 4;
  for (int i = 0; i < 7; ++i) {
    t1 = Z[static_cast<std::size_t>(k++)];
    DK[static_cast<std::size_t>(j--)] = Z[static_cast<std::size_t>(k++)];
    DK[static_cast<std::size_t>(j--)] = t1;
    t1 = inv(Z[static_cast<std::size_t>(k++)]);
    t2 = -Z[static_cast<std::size_t>(k++)] & 0xFFFF;
    t3 = -Z[static_cast<std::size_t>(k++)] & 0xFFFF;
    DK[static_cast<std::size_t>(j--)] = inv(Z[static_cast<std::size_t>(k++)]);
    DK[static_cast<std::size_t>(j--)] = t2;
    DK[static_cast<std::size_t>(j--)] = t3;
    DK[static_cast<std::size_t>(j--)] = t1;
  }
  t1 = Z[static_cast<std::size_t>(k++)];
  DK[static_cast<std::size_t>(j--)] = Z[static_cast<std::size_t>(k++)];
  DK[static_cast<std::size_t>(j--)] = t1;
  t1 = inv(Z[static_cast<std::size_t>(k++)]);
  t2 = -Z[static_cast<std::size_t>(k++)] & 0xFFFF;
  t3 = -Z[static_cast<std::size_t>(k++)] & 0xFFFF;
  DK[static_cast<std::size_t>(j--)] = inv(Z[static_cast<std::size_t>(k++)]);
  DK[static_cast<std::size_t>(j--)] = t3;
  DK[static_cast<std::size_t>(j--)] = t2;
  DK[static_cast<std::size_t>(j--)] = t1;
  return ks;
}

void idea_cipher(const std::vector<std::int8_t>& in,
                 std::vector<std::int8_t>& out,
                 const std::array<std::int32_t, 52>& key) {
  if (in.size() % 8 != 0 || out.size() != in.size()) {
    throw std::invalid_argument("idea_cipher: size must be a multiple of 8");
  }
  std::size_t i1 = 0, i2 = 0;
  for (std::size_t i = 0; i < in.size(); i += 8) {
    int ik = 0;
    int r = 8;
    std::int32_t x1 = in[i1++] & 0xFF;
    x1 |= (in[i1++] & 0xFF) << 8;
    std::int32_t x2 = in[i1++] & 0xFF;
    x2 |= (in[i1++] & 0xFF) << 8;
    std::int32_t x3 = in[i1++] & 0xFF;
    x3 |= (in[i1++] & 0xFF) << 8;
    std::int32_t x4 = in[i1++] & 0xFF;
    x4 |= (in[i1++] & 0xFF) << 8;
    std::int32_t t1, t2;
    do {
      x1 = mul16(x1, key[static_cast<std::size_t>(ik++)]);
      x2 = (x2 + key[static_cast<std::size_t>(ik++)]) & 0xFFFF;
      x3 = (x3 + key[static_cast<std::size_t>(ik++)]) & 0xFFFF;
      x4 = mul16(x4, key[static_cast<std::size_t>(ik++)]);
      t2 = x1 ^ x3;
      t2 = mul16(t2, key[static_cast<std::size_t>(ik++)]);
      t1 = (t2 + (x2 ^ x4)) & 0xFFFF;
      t1 = mul16(t1, key[static_cast<std::size_t>(ik++)]);
      t2 = (t1 + t2) & 0xFFFF;
      x1 ^= t1;
      x4 ^= t2;
      t2 ^= x2;
      x2 = x3 ^ t1;
      x3 = t2;
    } while (--r != 0);
    x1 = mul16(x1, key[static_cast<std::size_t>(ik++)]);
    x3 = (x3 + key[static_cast<std::size_t>(ik++)]) & 0xFFFF;
    x2 = (x2 + key[static_cast<std::size_t>(ik++)]) & 0xFFFF;
    x4 = mul16(x4, key[static_cast<std::size_t>(ik++)]);
    out[i2++] = static_cast<std::int8_t>(x1);
    out[i2++] = static_cast<std::int8_t>(x1 >> 8);
    out[i2++] = static_cast<std::int8_t>(x3);
    out[i2++] = static_cast<std::int8_t>(x3 >> 8);
    out[i2++] = static_cast<std::int8_t>(x2);
    out[i2++] = static_cast<std::int8_t>(x2 >> 8);
    out[i2++] = static_cast<std::int8_t>(x4);
    out[i2++] = static_cast<std::int8_t>(x4 >> 8);
  }
}

std::int64_t run(int n) {
  n = (n / 8) * 8;
  support::JavaRandom rng(136506717LL);  // JGF's data seed
  std::vector<std::int8_t> plain(static_cast<std::size_t>(n));
  for (auto& b : plain) b = static_cast<std::int8_t>(rng.next_int(255));
  const KeySchedule ks = make_keys(0x1234ABCDu);

  std::vector<std::int8_t> encrypted(plain.size());
  std::vector<std::int8_t> decrypted(plain.size());
  idea_cipher(plain, encrypted, ks.encrypt);
  idea_cipher(encrypted, decrypted, ks.decrypt);
  if (decrypted != plain) throw std::logic_error("crypt: round trip failed");

  std::int64_t checksum = 0;
  for (std::int8_t b : encrypted) {
    checksum = (checksum << 1) ^ (checksum >> 7) ^ (b & 0xFF);
  }
  return checksum;
}

}  // namespace hpcnet::kernels::crypt

#include "kernels/scimark.hpp"

namespace hpcnet::kernels::sor {

double num_flops(int m, int n, int iterations) {
  return (static_cast<double>(m) - 1) * (static_cast<double>(n) - 1) *
         static_cast<double>(iterations) * 6.0;
}

void execute(double omega, std::vector<double>& g, int m, int n,
             int num_iterations) {
  const double omega_over_four = omega * 0.25;
  const double one_minus_omega = 1.0 - omega;
  const int mm1 = m - 1;
  const int nm1 = n - 1;
  double* G = g.data();
  for (int p = 0; p < num_iterations; ++p) {
    for (int i = 1; i < mm1; ++i) {
      double* gi = G + static_cast<std::ptrdiff_t>(i) * n;
      const double* gim1 = gi - n;
      const double* gip1 = gi + n;
      for (int j = 1; j < nm1; ++j) {
        gi[j] = omega_over_four * (gim1[j] + gip1[j] + gi[j - 1] + gi[j + 1]) +
                one_minus_omega * gi[j];
      }
    }
  }
}

void execute_redblack(double omega, std::vector<double>& g, int m, int n,
                      int num_iterations) {
  const double omega_over_four = omega * 0.25;
  const double one_minus_omega = 1.0 - omega;
  const int mm1 = m - 1;
  const int nm1 = n - 1;
  double* G = g.data();
  for (int p = 0; p < num_iterations; ++p) {
    for (int phase = 0; phase < 2; ++phase) {
      for (int i = 1; i < mm1; ++i) {
        double* gi = G + static_cast<std::ptrdiff_t>(i) * n;
        const double* gim1 = gi - n;
        const double* gip1 = gi + n;
        for (int j = 1; j < nm1; ++j) {
          if (((i + j) & 1) != phase) continue;
          gi[j] = omega_over_four *
                      (gim1[j] + gip1[j] + gi[j - 1] + gi[j + 1]) +
                  one_minus_omega * gi[j];
        }
      }
    }
  }
}

double checksum_redblack(int n, int iterations) {
  support::SciMarkRandom rng(101010);
  std::vector<double> g(static_cast<std::size_t>(n) * n);
  rng.next_doubles(g.data(), n * n);
  execute_redblack(1.25, g, n, n, iterations);
  return g[static_cast<std::size_t>(n) + 1];
}

double checksum(int n, int iterations) {
  support::SciMarkRandom rng(101010);
  std::vector<double> g(static_cast<std::size_t>(n) * n);
  rng.next_doubles(g.data(), n * n);
  execute(1.25, g, n, n, iterations);
  return g[static_cast<std::size_t>(n) + 1];  // G[1][1]
}

}  // namespace hpcnet::kernels::sor

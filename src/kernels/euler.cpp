// 2-D Euler equations: inviscid channel flow over a circular-arc bump (the
// JGF Euler workload), structured nx x (nx/2) finite-volume mesh, Rusanov
// (local Lax-Friedrichs) fluxes, 4-stage Runge-Kutta pseudo-time stepping.
// A compact reimplementation that preserves the reference benchmark's access
// pattern: a structured, irregular (stretched) mesh swept cell-by-cell with
// neighbour flux accumulation.
#include <cmath>
#include <vector>

#include "kernels/jgf.hpp"

namespace hpcnet::kernels::euler {

namespace {

constexpr double kGamma = 1.4;

struct State {
  double rho, ru, rv, e;  // density, momenta, total energy
};

struct Grid {
  int nx, ny;
  std::vector<double> xv, yv;  // vertex coordinates, (nx+1) x (ny+1)

  double& xat(int i, int j) { return xv[static_cast<std::size_t>(i) * (ny + 1) + j]; }
  double& yat(int i, int j) { return yv[static_cast<std::size_t>(i) * (ny + 1) + j]; }
};

Grid make_channel(int nx, int ny) {
  Grid g;
  g.nx = nx;
  g.ny = ny;
  g.xv.resize(static_cast<std::size_t>(nx + 1) * (ny + 1));
  g.yv.resize(static_cast<std::size_t>(nx + 1) * (ny + 1));
  // Channel x in [0,3], bump on [1,2] of height 0.1*sin^2(pi*(x-1)),
  // mesh sheared toward the lower wall (the "irregular" structured mesh).
  for (int i = 0; i <= nx; ++i) {
    const double x = 3.0 * i / nx;
    double floor_y = 0.0;
    if (x > 1.0 && x < 2.0) {
      const double s = std::sin(M_PI * (x - 1.0));
      floor_y = 0.1 * s * s;
    }
    for (int j = 0; j <= ny; ++j) {
      const double t = static_cast<double>(j) / ny;
      // Stretch: cluster points near the bump wall.
      const double ts = t * t * (3 - 2 * t) * 0.5 + t * 0.5;
      g.xat(i, j) = x;
      g.yat(i, j) = floor_y + (1.0 - floor_y) * ts;
    }
  }
  return g;
}

double pressure(const State& q) {
  const double ke = 0.5 * (q.ru * q.ru + q.rv * q.rv) / q.rho;
  return (kGamma - 1.0) * (q.e - ke);
}

/// Rusanov flux through a face with normal (nx_, ny_) scaled by face length.
State rusanov(const State& l, const State& r, double nx_, double ny_) {
  const double len = std::sqrt(nx_ * nx_ + ny_ * ny_);
  if (len == 0) return {0, 0, 0, 0};
  const double inx = nx_ / len;
  const double iny = ny_ / len;
  auto normal_flux = [&](const State& q) {
    const double p = pressure(q);
    const double un = (q.ru * inx + q.rv * iny) / q.rho;
    return State{q.rho * un, q.ru * un + p * inx, q.rv * un + p * iny,
                 (q.e + p) * un};
  };
  const State fl = normal_flux(l);
  const State fr = normal_flux(r);
  auto wavespeed = [&](const State& q) {
    const double p = pressure(q);
    const double c = std::sqrt(kGamma * p / q.rho);
    const double un = std::fabs((q.ru * inx + q.rv * iny) / q.rho);
    return un + c;
  };
  const double s = std::max(wavespeed(l), wavespeed(r));
  return State{0.5 * (fl.rho + fr.rho) - 0.5 * s * (r.rho - l.rho),
               0.5 * (fl.ru + fr.ru) - 0.5 * s * (r.ru - l.ru),
               0.5 * (fl.rv + fr.rv) - 0.5 * s * (r.rv - l.rv),
               0.5 * (fl.e + fr.e) - 0.5 * s * (r.e - l.e)};
}

class Solver {
 public:
  Solver(int nx, int ny) : g_(make_channel(nx, ny)), nx_(nx), ny_(ny) {
    q_.resize(static_cast<std::size_t>(nx) * ny);
    // Free-stream initialization: Mach 0.5 flow in +x.
    const double rho = 1.0, p = 1.0 / kGamma;
    const double c = std::sqrt(kGamma * p / rho);
    const double u = 0.5 * c;
    free_ = State{rho, rho * u, 0.0, p / (kGamma - 1) + 0.5 * rho * u * u};
    for (auto& q : q_) q = free_;
  }

  void step(double cfl) {
    // 4-stage RK with frozen residual weights (JST-style scheme shape).
    static constexpr double alpha[4] = {0.25, 1.0 / 3.0, 0.5, 1.0};
    const std::vector<State> q0 = q_;
    for (double ak : alpha) {
      std::vector<State> res = residual();
      for (int i = 0; i < nx_ * ny_; ++i) {
        const double dt = cfl * local_dt(i);
        auto& q = q_[static_cast<std::size_t>(i)];
        const auto& base = q0[static_cast<std::size_t>(i)];
        q.rho = base.rho - ak * dt * res[static_cast<std::size_t>(i)].rho;
        q.ru = base.ru - ak * dt * res[static_cast<std::size_t>(i)].ru;
        q.rv = base.rv - ak * dt * res[static_cast<std::size_t>(i)].rv;
        q.e = base.e - ak * dt * res[static_cast<std::size_t>(i)].e;
      }
    }
  }

  double average_density() const {
    double sum = 0;
    for (const auto& q : q_) sum += q.rho;
    return sum / static_cast<double>(q_.size());
  }

 private:
  State& at(int i, int j) { return q_[static_cast<std::size_t>(i) * ny_ + j]; }
  const State& at(int i, int j) const {
    return q_[static_cast<std::size_t>(i) * ny_ + j];
  }

  double cell_area(int i, int j) const {
    Grid& g = const_cast<Grid&>(g_);
    const double x0 = g.xat(i, j), y0 = g.yat(i, j);
    const double x1 = g.xat(i + 1, j), y1 = g.yat(i + 1, j);
    const double x2 = g.xat(i + 1, j + 1), y2 = g.yat(i + 1, j + 1);
    const double x3 = g.xat(i, j + 1), y3 = g.yat(i, j + 1);
    return 0.5 * std::fabs((x2 - x0) * (y3 - y1) - (x3 - x1) * (y2 - y0));
  }

  double local_dt(int cell) const {
    const int i = cell / ny_;
    const int j = cell % ny_;
    const State& q = at(i, j);
    const double p = std::max(pressure(q), 1e-8);
    const double c = std::sqrt(kGamma * p / q.rho);
    const double u = std::fabs(q.ru / q.rho) + std::fabs(q.rv / q.rho);
    const double h = std::sqrt(cell_area(i, j));
    return h / (u + c);
  }

  /// Wall mirror state: reflect the normal momentum component.
  State wall_state(const State& q, double nx_, double ny_) const {
    const double len = std::sqrt(nx_ * nx_ + ny_ * ny_);
    const double inx = nx_ / len, iny = ny_ / len;
    const double un = q.ru * inx + q.rv * iny;
    return State{q.rho, q.ru - 2 * un * inx, q.rv - 2 * un * iny, q.e};
  }

  std::vector<State> residual() {
    std::vector<State> res(q_.size(), State{0, 0, 0, 0});
    auto add = [&](int i, int j, const State& f, double sign, double area) {
      State& r = res[static_cast<std::size_t>(i) * ny_ + j];
      r.rho += sign * f.rho / area;
      r.ru += sign * f.ru / area;
      r.rv += sign * f.rv / area;
      r.e += sign * f.e / area;
    };
    // Vertical faces (between (i-1,j) and (i,j)); i in [0, nx], with inflow
    // and outflow boundaries at i=0 and i=nx.
    for (int i = 0; i <= nx_; ++i) {
      for (int j = 0; j < ny_; ++j) {
        const double fx = g_.yat(i, j + 1) - g_.yat(i, j);
        const double fy = -(g_.xat(i, j + 1) - g_.xat(i, j));
        const State& l = i > 0 ? at(i - 1, j) : free_;
        const State& r = i < nx_ ? at(i, j) : at(i - 1, j);  // outflow: copy
        State f = rusanov(l, r, fx, fy);
        const double len = std::sqrt(fx * fx + fy * fy);
        f.rho *= len;
        f.ru *= len;
        f.rv *= len;
        f.e *= len;
        if (i > 0) add(i - 1, j, f, +1, cell_area(i - 1, j));
        if (i < nx_) add(i, j, f, -1, cell_area(i, j));
      }
    }
    // Horizontal faces (between (i,j-1) and (i,j)); walls at j=0 and j=ny.
    for (int j = 0; j <= ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const double fx = -(g_.yat(i + 1, j) - g_.yat(i, j));
        const double fy = g_.xat(i + 1, j) - g_.xat(i, j);
        State l = j > 0 ? at(i, j - 1) : wall_state(at(i, 0), fx, fy);
        State r = j < ny_ ? at(i, j) : wall_state(at(i, ny_ - 1), fx, fy);
        State f = rusanov(l, r, fx, fy);
        const double len = std::sqrt(fx * fx + fy * fy);
        f.rho *= len;
        f.ru *= len;
        f.rv *= len;
        f.e *= len;
        if (j > 0) add(i, j - 1, f, +1, cell_area(i, j - 1));
        if (j < ny_) add(i, j, f, -1, cell_area(i, j));
      }
    }
    return res;
  }

  Grid g_;
  int nx_, ny_;
  std::vector<State> q_;
  State free_{};
};

}  // namespace

double solve(int nx, int steps) {
  Solver s(nx, std::max(nx / 2, 4));
  for (int i = 0; i < steps; ++i) s.step(0.5);
  return s.average_density();
}

}  // namespace hpcnet::kernels::euler

// Lennard-Jones argon N-body (JGF MolDyn): fcc lattice of 4*mm^3 particles
// in a periodic cube, all-pairs force evaluation with minimum-image
// convention and cutoff, velocity updates and kinetic-energy scaling as in
// the JGF reference. Velocity initialization uses java.util.Random gaussians
// so the CIL port computes the identical trajectory.
#include <algorithm>
#include <cmath>

#include "kernels/jgf.hpp"
#include "support/java_random.hpp"

namespace hpcnet::kernels::moldyn {

Result simulate(int mm, int moves) {
  const int mdsize = 4 * mm * mm * mm;
  const double den = 0.83134;
  const double tref = 0.722;
  const double h = 0.064;

  const double side = std::cbrt(mdsize / den);
  const double a = side / mm;
  const double sideh = side * 0.5;
  const double hsq = h * h;
  const double hsq2 = hsq * 0.5;
  // JGF uses mm/4 for its (large) reference sizes; clamp so small problem
  // sizes still see first- and second-shell neighbours.
  const double rcoff = std::max(mm / 4.0, 1.9);
  const double rcoffs = rcoff * rcoff;
  const double tscale = 16.0 / (1.0 * mdsize - 1.0);
  const double vaver = 1.13 * std::sqrt(tref / 24.0);

  std::vector<double> x(static_cast<std::size_t>(mdsize)),
      y(static_cast<std::size_t>(mdsize)), z(static_cast<std::size_t>(mdsize));
  std::vector<double> vx(static_cast<std::size_t>(mdsize)),
      vy(static_cast<std::size_t>(mdsize)), vz(static_cast<std::size_t>(mdsize));
  std::vector<double> fx(static_cast<std::size_t>(mdsize)),
      fy(static_cast<std::size_t>(mdsize)), fz(static_cast<std::size_t>(mdsize));

  // fcc lattice.
  int ijk = 0;
  for (int lg = 0; lg <= 1; ++lg) {
    for (int i = 0; i < mm; ++i) {
      for (int j = 0; j < mm; ++j) {
        for (int k = 0; k < mm; ++k) {
          x[static_cast<std::size_t>(ijk)] = i * a + lg * a * 0.5;
          y[static_cast<std::size_t>(ijk)] = j * a + lg * a * 0.5;
          z[static_cast<std::size_t>(ijk)] = k * a;
          ++ijk;
        }
      }
    }
  }
  for (int lg = 1; lg <= 2; ++lg) {
    for (int i = 0; i < mm; ++i) {
      for (int j = 0; j < mm; ++j) {
        for (int k = 0; k < mm; ++k) {
          x[static_cast<std::size_t>(ijk)] = i * a + (2 - lg) * a * 0.5;
          y[static_cast<std::size_t>(ijk)] = j * a + (lg - 1) * a * 0.5;
          z[static_cast<std::size_t>(ijk)] = k * a + a * 0.5;
          ++ijk;
        }
      }
    }
  }

  // Maxwell-ish velocities from gaussian deviates (deterministic seed).
  support::JavaRandom rng(8657271LL);
  for (int i = 0; i < mdsize; ++i) {
    vx[static_cast<std::size_t>(i)] = rng.next_gaussian();
    vy[static_cast<std::size_t>(i)] = rng.next_gaussian();
    vz[static_cast<std::size_t>(i)] = rng.next_gaussian();
  }
  // Remove net momentum and scale to the reference temperature.
  double spx = 0, spy = 0, spz = 0;
  for (int i = 0; i < mdsize; ++i) {
    spx += vx[static_cast<std::size_t>(i)];
    spy += vy[static_cast<std::size_t>(i)];
    spz += vz[static_cast<std::size_t>(i)];
  }
  spx /= mdsize;
  spy /= mdsize;
  spz /= mdsize;
  double ekin = 0;
  for (int i = 0; i < mdsize; ++i) {
    vx[static_cast<std::size_t>(i)] -= spx;
    vy[static_cast<std::size_t>(i)] -= spy;
    vz[static_cast<std::size_t>(i)] -= spz;
    ekin += vx[static_cast<std::size_t>(i)] * vx[static_cast<std::size_t>(i)] +
            vy[static_cast<std::size_t>(i)] * vy[static_cast<std::size_t>(i)] +
            vz[static_cast<std::size_t>(i)] * vz[static_cast<std::size_t>(i)];
  }
  const double sc = h * std::sqrt(tref / (tscale * ekin));
  for (int i = 0; i < mdsize; ++i) {
    vx[static_cast<std::size_t>(i)] *= sc;
    vy[static_cast<std::size_t>(i)] *= sc;
    vz[static_cast<std::size_t>(i)] *= sc;
  }

  Result res;
  res.particles = mdsize;
  double epot = 0, vir = 0;
  double count = 0;
  (void)vaver;

  for (int move = 0; move < moves; ++move) {
    // Position update + periodic wrap.
    for (int i = 0; i < mdsize; ++i) {
      x[static_cast<std::size_t>(i)] +=
          vx[static_cast<std::size_t>(i)] + fx[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] +=
          vy[static_cast<std::size_t>(i)] + fy[static_cast<std::size_t>(i)];
      z[static_cast<std::size_t>(i)] +=
          vz[static_cast<std::size_t>(i)] + fz[static_cast<std::size_t>(i)];
      if (x[static_cast<std::size_t>(i)] < 0) x[static_cast<std::size_t>(i)] += side;
      if (x[static_cast<std::size_t>(i)] > side) x[static_cast<std::size_t>(i)] -= side;
      if (y[static_cast<std::size_t>(i)] < 0) y[static_cast<std::size_t>(i)] += side;
      if (y[static_cast<std::size_t>(i)] > side) y[static_cast<std::size_t>(i)] -= side;
      if (z[static_cast<std::size_t>(i)] < 0) z[static_cast<std::size_t>(i)] += side;
      if (z[static_cast<std::size_t>(i)] > side) z[static_cast<std::size_t>(i)] -= side;
    }
    // Partial velocity update.
    for (int i = 0; i < mdsize; ++i) {
      vx[static_cast<std::size_t>(i)] += fx[static_cast<std::size_t>(i)];
      vy[static_cast<std::size_t>(i)] += fy[static_cast<std::size_t>(i)];
      vz[static_cast<std::size_t>(i)] += fz[static_cast<std::size_t>(i)];
      fx[static_cast<std::size_t>(i)] = 0;
      fy[static_cast<std::size_t>(i)] = 0;
      fz[static_cast<std::size_t>(i)] = 0;
    }
    // All-pairs force calculation (the benchmark's hot loop).
    epot = 0;
    vir = 0;
    for (int i = 0; i < mdsize; ++i) {
      for (int j = i + 1; j < mdsize; ++j) {
        double xx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
        double yy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
        double zz = z[static_cast<std::size_t>(i)] - z[static_cast<std::size_t>(j)];
        if (xx < -sideh) xx += side;
        if (xx > sideh) xx -= side;
        if (yy < -sideh) yy += side;
        if (yy > sideh) yy -= side;
        if (zz < -sideh) zz += side;
        if (zz > sideh) zz -= side;
        const double rd = xx * xx + yy * yy + zz * zz;
        if (rd <= rcoffs) {
          const double rrd = 1.0 / rd;
          const double rrd2 = rrd * rrd;
          const double rrd3 = rrd2 * rrd;
          const double rrd4 = rrd2 * rrd2;
          const double rrd6 = rrd2 * rrd4;
          const double rrd7 = rrd6 * rrd;
          epot += rrd6 - rrd3;
          const double r148 = rrd7 - 0.5 * rrd4;
          vir -= rd * r148;
          const double fxx = xx * r148;
          const double fyy = yy * r148;
          const double fzz = zz * r148;
          fx[static_cast<std::size_t>(i)] += fxx;
          fy[static_cast<std::size_t>(i)] += fyy;
          fz[static_cast<std::size_t>(i)] += fzz;
          fx[static_cast<std::size_t>(j)] -= fxx;
          fy[static_cast<std::size_t>(j)] -= fyy;
          fz[static_cast<std::size_t>(j)] -= fzz;
          count += 1;
        }
      }
    }
    for (int i = 0; i < mdsize; ++i) {
      fx[static_cast<std::size_t>(i)] *= hsq2;
      fy[static_cast<std::size_t>(i)] *= hsq2;
      fz[static_cast<std::size_t>(i)] *= hsq2;
    }
    // Complete the velocity update and accumulate kinetic energy.
    ekin = 0;
    for (int i = 0; i < mdsize; ++i) {
      vx[static_cast<std::size_t>(i)] += fx[static_cast<std::size_t>(i)];
      vy[static_cast<std::size_t>(i)] += fy[static_cast<std::size_t>(i)];
      vz[static_cast<std::size_t>(i)] += fz[static_cast<std::size_t>(i)];
      ekin += vx[static_cast<std::size_t>(i)] * vx[static_cast<std::size_t>(i)] +
              vy[static_cast<std::size_t>(i)] * vy[static_cast<std::size_t>(i)] +
              vz[static_cast<std::size_t>(i)] * vz[static_cast<std::size_t>(i)];
    }
    res.ek = ekin / hsq;
  }
  res.epot = epot;
  res.vir = vir;
  res.interactions = count;
  return res;
}

}  // namespace hpcnet::kernels::moldyn

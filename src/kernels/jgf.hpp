// Native C++ ports of the Java Grande section 2/3 kernels the paper lists in
// Table 4: Fibonacci, Sieve, Hanoi, HeapSort, Crypt (IDEA), MolDyn, Euler,
// Search (connect-4 alpha-beta) and RayTracer. Each exposes num_ops (for the
// throughput reports) and a deterministic checksum used to validate the CIL
// ports against the native baseline.
//
// Faithfulness notes: Fibonacci/Sieve/Hanoi/HeapSort/Crypt/MolDyn follow the
// JGF reference algorithms directly. Euler and Search are compact
// reimplementations preserving the reference workloads' structure (a
// structured irregular-mesh flow solver; a memoized alpha-beta game search) —
// the paper's evaluation only reports SciMark macro numbers, so these serve
// the Table-4 inventory and the bench_jgf comparison.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hpcnet::kernels {

namespace fib {
/// Naive doubly-recursive Fibonacci (the JGF "many method calls" kernel).
std::int64_t compute(int n);
double num_calls(int n);  // number of recursive invocations
}  // namespace fib

namespace sieve {
/// Count of primes <= n via the Sieve of Eratosthenes.
int count_primes(int n);
}  // namespace sieve

namespace hanoi {
/// Number of moves to solve the n-disk Tower of Hanoi (2^n - 1), computed by
/// actually recursing (the kernel measures call overhead, not math).
std::int64_t solve(int n);
}  // namespace hanoi

namespace heapsort {
/// Sorts n pseudo-random ints (JGF's NumericSortTest). Returns a checksum
/// (XOR-rotate over the sorted array) and fails loudly if unsorted.
std::int64_t run(int n);
void sort(std::vector<std::int32_t>& data);
}  // namespace heapsort

namespace crypt {
/// IDEA encryption/decryption over n bytes (JGF Crypt). Returns a checksum
/// of the encrypted text; round-trip equality is asserted internally.
struct KeySchedule {
  std::array<std::int32_t, 52> encrypt;
  std::array<std::int32_t, 52> decrypt;
};
KeySchedule make_keys(std::uint64_t seed);
void idea_cipher(const std::vector<std::int8_t>& in,
                 std::vector<std::int8_t>& out,
                 const std::array<std::int32_t, 52>& key);
std::int64_t run(int n);
}  // namespace crypt

namespace moldyn {
/// Lennard-Jones argon N-body (JGF MolDyn), mm x mm x mm unit cells
/// (4 atoms each), `moves` velocity-Verlet steps. Returns total energy
/// (kinetic + potential) after the run — the JGF validation quantity.
struct Result {
  double ek = 0;   // final kinetic energy sum
  double epot = 0; // final potential energy
  double vir = 0;  // virial
  int particles = 0;
  double interactions = 0;
};
Result simulate(int mm, int moves);
}  // namespace moldyn

namespace euler {
/// 2-D Euler equations in a channel with a circular-arc bump on the lower
/// wall, structured nx x ny mesh, explicit 4-stage Runge-Kutta with local
/// time stepping. Returns the average density after `steps` (a stable
/// convergence checksum).
double solve(int nx, int steps);
}  // namespace euler

namespace search {
/// Alpha-beta search of connect-4 on the 6x7 board with a transposition
/// table, searching to `depth` plies from the opening position. Returns the
/// node count (the JGF benchmark's work metric); `score_out` receives the
/// game-theoretic score of the position at that depth.
std::int64_t solve(int depth, int* score_out);
}  // namespace search

namespace raytracer {
/// JGF 3D ray tracer: 64-sphere scene rendered at n x n. Returns the JGF
/// validation checksum (sum of pixel color words).
std::int64_t render(int n);
/// As render(), also filling `pixels` (row-major 0xRRGGBB words).
std::int64_t render_image(int n, std::vector<std::int32_t>& pixels);
}  // namespace raytracer

}  // namespace hpcnet::kernels

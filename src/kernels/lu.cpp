#include <cmath>

#include "kernels/scimark.hpp"

namespace hpcnet::kernels::lu {

double num_flops(int n) {
  const double nd = n;
  return (2.0 * nd * nd * nd) / 3.0;
}

int factor(std::vector<double>& a, int n, std::vector<std::int32_t>& pivot) {
  double* A = a.data();
  auto row = [&](int i) { return A + static_cast<std::ptrdiff_t>(i) * n; };
  for (int j = 0; j < n; ++j) {
    // Find the pivot in column j, rows j..n-1.
    int jp = j;
    double t = std::fabs(row(j)[j]);
    for (int i = j + 1; i < n; ++i) {
      const double ab = std::fabs(row(i)[j]);
      if (ab > t) {
        jp = i;
        t = ab;
      }
    }
    pivot[static_cast<std::size_t>(j)] = jp;
    if (row(jp)[j] == 0) return 1;
    if (jp != j) {
      for (int k = 0; k < n; ++k) std::swap(row(j)[k], row(jp)[k]);
    }
    if (j < n - 1) {
      const double recp = 1.0 / row(j)[j];
      for (int k = j + 1; k < n; ++k) row(k)[j] *= recp;
    }
    if (j < n - 1) {
      for (int ii = j + 1; ii < n; ++ii) {
        double* aii = row(ii);
        const double* aj = row(j);
        const double aii_j = aii[j];
        for (int jj = j + 1; jj < n; ++jj) aii[jj] -= aii_j * aj[jj];
      }
    }
  }
  return 0;
}

namespace {
std::vector<double> random_matrix(int n, support::SciMarkRandom& rng) {
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  rng.next_doubles(a.data(), n * n);
  return a;
}
}  // namespace

double residual(int n) {
  support::SciMarkRandom rng(101010);
  std::vector<double> a = random_matrix(n, rng);
  std::vector<double> lu = a;
  std::vector<std::int32_t> pivot(static_cast<std::size_t>(n));
  if (factor(lu, n, pivot) != 0) return 1e9;

  // Apply the recorded row swaps to A, then compare PA with L*U.
  for (int j = 0; j < n; ++j) {
    const int jp = pivot[static_cast<std::size_t>(j)];
    if (jp != j) {
      for (int k = 0; k < n; ++k) {
        std::swap(a[static_cast<std::size_t>(j) * n + k],
                  a[static_cast<std::size_t>(jp) * n + k]);
      }
    }
  }
  double max_err = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double sum = 0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        const double l = k == i ? 1.0 : lu[static_cast<std::size_t>(i) * n + k];
        const double u = lu[static_cast<std::size_t>(k) * n + j];
        if (k < i) {
          sum += lu[static_cast<std::size_t>(i) * n + k] *
                 lu[static_cast<std::size_t>(k) * n + j];
        } else {
          sum += l * u;
        }
      }
      max_err = std::max(max_err,
                         std::fabs(sum - a[static_cast<std::size_t>(i) * n + j]));
    }
  }
  return max_err;
}

double checksum(int n) {
  support::SciMarkRandom rng(101010);
  std::vector<double> lu = random_matrix(n, rng);
  std::vector<std::int32_t> pivot(static_cast<std::size_t>(n));
  factor(lu, n, pivot);
  return lu[0];
}

}  // namespace hpcnet::kernels::lu

#include "kernels/scimark.hpp"

namespace hpcnet::kernels::montecarlo {

namespace {
constexpr int kSeed = 113;  // SciMark's MonteCarlo seed
}

double num_flops(int num_samples) {
  // SciMark counts 4 flops per sample (2 multiplies, 1 add, 1 compare).
  return static_cast<double>(num_samples) * 4.0;
}

double integrate(int num_samples) {
  support::SciMarkRandom rng(kSeed);
  int under_curve = 0;
  for (int count = 0; count < num_samples; ++count) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    if (x * x + y * y <= 1.0) ++under_curve;
  }
  return (static_cast<double>(under_curve) / num_samples) * 4.0;
}

}  // namespace hpcnet::kernels::montecarlo

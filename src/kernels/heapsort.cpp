#include <stdexcept>

#include "kernels/jgf.hpp"
#include "support/java_random.hpp"

namespace hpcnet::kernels::heapsort {

void sort(std::vector<std::int32_t>& data) {
  // Classic sift-down heap sort (the JGF NumericSortTest algorithm).
  const auto n = static_cast<std::int64_t>(data.size());
  if (n < 2) return;
  auto sift = [&](std::int64_t start, std::int64_t end) {
    std::int64_t root = start;
    while (root * 2 + 1 <= end) {
      std::int64_t child = root * 2 + 1;
      if (child + 1 <= end && data[static_cast<std::size_t>(child)] <
                                  data[static_cast<std::size_t>(child + 1)]) {
        ++child;
      }
      if (data[static_cast<std::size_t>(root)] <
          data[static_cast<std::size_t>(child)]) {
        std::swap(data[static_cast<std::size_t>(root)],
                  data[static_cast<std::size_t>(child)]);
        root = child;
      } else {
        return;
      }
    }
  };
  for (std::int64_t start = (n - 2) / 2; start >= 0; --start) sift(start, n - 1);
  for (std::int64_t end = n - 1; end > 0; --end) {
    std::swap(data[0], data[static_cast<std::size_t>(end)]);
    sift(0, end - 1);
  }
}

std::int64_t run(int n) {
  support::JavaRandom rng(1966);  // JGF RANDOM_SEED
  std::vector<std::int32_t> data(static_cast<std::size_t>(n));
  for (auto& v : data) v = rng.next_int();
  sort(data);
  std::int64_t checksum = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (data[i - 1] > data[i]) throw std::logic_error("heapsort: not sorted");
  }
  for (std::int32_t v : data) {
    checksum = (checksum << 1) ^ (checksum >> 7) ^ v;
  }
  return checksum;
}

}  // namespace hpcnet::kernels::heapsort

// Java-Grande-style instrumentation: named accumulating timers with an
// operation count, reporting ops/sec or MFlops — the exact measurement
// protocol of the JGF benchmark framework the paper ports (JGFInstrumentor).
// The paper runs each micro-benchmark 100 times, screens for outliers and
// reports a representative run; Repeater encapsulates that procedure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "support/timer.hpp"

namespace hpcnet::jgf {

class Instrumentor {
 public:
  /// Registers a timer whose throughput is reported in `unit` (e.g.
  /// "ops/sec", "MFlops"). Re-adding resets it.
  void add_timer(const std::string& name, std::string unit = "ops/sec");

  void start(const std::string& name);
  void stop(const std::string& name);
  /// Adds to the operation count used for throughput.
  void add_ops(const std::string& name, double ops);

  double read_seconds(const std::string& name) const;
  double ops(const std::string& name) const;
  /// ops / seconds; 0 when no time elapsed.
  double throughput(const std::string& name) const;
  const std::string& unit(const std::string& name) const;

  void reset(const std::string& name);
  std::vector<std::string> names() const;

  /// JGF-style one-line report for a timer.
  std::string report(const std::string& name) const;

 private:
  struct Timer {
    support::Stopwatch watch;
    double ops = 0;
    std::string unit;
  };
  const Timer& at(const std::string& name) const;
  Timer& at(const std::string& name);

  std::map<std::string, Timer> timers_;
};

/// The paper's measurement protocol: run `fn` (which returns a score) for
/// `runs` iterations, screen for outliers, return the representative score.
struct RepeatResult {
  double score = 0;         // representative (median) score
  std::size_t outliers = 0; // samples outside the MAD screen
  support::Summary summary;
};
RepeatResult repeat(const std::function<double()>& fn, std::size_t runs = 5);

/// Self-calibrating loop sizing: grows `size` until one run of `fn(size)`
/// takes at least `min_seconds`; returns the calibrated size. Mirrors the
/// JGF micro-benchmark loop calibration.
std::int64_t calibrate(const std::function<double(std::int64_t)>& seconds_for,
                       double min_seconds = 0.05,
                       std::int64_t initial = 1024);

}  // namespace hpcnet::jgf

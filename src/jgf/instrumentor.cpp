#include "jgf/instrumentor.hpp"

#include <cstdio>
#include <stdexcept>

namespace hpcnet::jgf {

void Instrumentor::add_timer(const std::string& name, std::string unit) {
  Timer t;
  t.unit = std::move(unit);
  timers_[name] = std::move(t);
}

const Instrumentor::Timer& Instrumentor::at(const std::string& name) const {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    throw std::invalid_argument("unknown timer: " + name);
  }
  return it->second;
}

Instrumentor::Timer& Instrumentor::at(const std::string& name) {
  return const_cast<Timer&>(
      static_cast<const Instrumentor*>(this)->at(name));
}

void Instrumentor::start(const std::string& name) { at(name).watch.start(); }
void Instrumentor::stop(const std::string& name) { at(name).watch.stop(); }
void Instrumentor::add_ops(const std::string& name, double ops) {
  at(name).ops += ops;
}

double Instrumentor::read_seconds(const std::string& name) const {
  return at(name).watch.seconds();
}
double Instrumentor::ops(const std::string& name) const { return at(name).ops; }

double Instrumentor::throughput(const std::string& name) const {
  const Timer& t = at(name);
  const double secs = t.watch.seconds();
  return secs > 0 ? t.ops / secs : 0.0;
}

const std::string& Instrumentor::unit(const std::string& name) const {
  return at(name).unit;
}

void Instrumentor::reset(const std::string& name) {
  Timer& t = at(name);
  t.watch.reset();
  t.ops = 0;
}

std::vector<std::string> Instrumentor::names() const {
  std::vector<std::string> out;
  out.reserve(timers_.size());
  for (const auto& [k, v] : timers_) out.push_back(k);
  return out;
}

std::string Instrumentor::report(const std::string& name) const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-28s %12.4f s  %14.4g %s", name.c_str(),
                read_seconds(name), throughput(name), unit(name).c_str());
  return buf;
}

RepeatResult repeat(const std::function<double()>& fn, std::size_t runs) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) samples.push_back(fn());
  RepeatResult r;
  r.summary = support::summarize(samples);
  r.outliers = support::find_outliers(samples).size();
  r.score = support::representative(samples);
  return r;
}

std::int64_t calibrate(const std::function<double(std::int64_t)>& seconds_for,
                       double min_seconds, std::int64_t initial) {
  std::int64_t size = initial;
  for (int guard = 0; guard < 40; ++guard) {
    if (seconds_for(size) >= min_seconds) return size;
    size *= 2;
  }
  return size;
}

}  // namespace hpcnet::jgf

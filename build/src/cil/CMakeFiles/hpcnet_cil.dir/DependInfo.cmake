
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cil/jg_crypt.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/jg_crypt.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/jg_crypt.cpp.o.d"
  "/root/repo/src/cil/jg_kernels.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/jg_kernels.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/jg_kernels.cpp.o.d"
  "/root/repo/src/cil/micro_arith.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_arith.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_arith.cpp.o.d"
  "/root/repo/src/cil/micro_assign.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_assign.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_assign.cpp.o.d"
  "/root/repo/src/cil/micro_cast.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_cast.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_cast.cpp.o.d"
  "/root/repo/src/cil/micro_create.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_create.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_create.cpp.o.d"
  "/root/repo/src/cil/micro_exception.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_exception.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_exception.cpp.o.d"
  "/root/repo/src/cil/micro_loop.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_loop.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_loop.cpp.o.d"
  "/root/repo/src/cil/micro_math.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_math.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_math.cpp.o.d"
  "/root/repo/src/cil/micro_matrix.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_matrix.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_matrix.cpp.o.d"
  "/root/repo/src/cil/micro_method.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_method.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_method.cpp.o.d"
  "/root/repo/src/cil/micro_serial.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_serial.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/micro_serial.cpp.o.d"
  "/root/repo/src/cil/mt_kernels.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/mt_kernels.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/mt_kernels.cpp.o.d"
  "/root/repo/src/cil/parallel_kernels.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/parallel_kernels.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/parallel_kernels.cpp.o.d"
  "/root/repo/src/cil/sm_kernels.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/sm_kernels.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/sm_kernels.cpp.o.d"
  "/root/repo/src/cil/suite.cpp" "src/cil/CMakeFiles/hpcnet_cil.dir/suite.cpp.o" "gcc" "src/cil/CMakeFiles/hpcnet_cil.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/hpcnet_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hpcnet_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/jgf/CMakeFiles/hpcnet_jgf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcnet_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

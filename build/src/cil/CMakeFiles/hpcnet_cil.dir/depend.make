# Empty dependencies file for hpcnet_cil.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhpcnet_cil.a"
)

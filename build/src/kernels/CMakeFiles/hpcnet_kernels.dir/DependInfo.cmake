
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/crypt.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/crypt.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/crypt.cpp.o.d"
  "/root/repo/src/kernels/euler.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/euler.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/euler.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/fft.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/fft.cpp.o.d"
  "/root/repo/src/kernels/fib.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/fib.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/fib.cpp.o.d"
  "/root/repo/src/kernels/hanoi.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/hanoi.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/hanoi.cpp.o.d"
  "/root/repo/src/kernels/heapsort.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/heapsort.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/heapsort.cpp.o.d"
  "/root/repo/src/kernels/lu.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/lu.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/lu.cpp.o.d"
  "/root/repo/src/kernels/moldyn.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/moldyn.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/moldyn.cpp.o.d"
  "/root/repo/src/kernels/montecarlo.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/montecarlo.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/montecarlo.cpp.o.d"
  "/root/repo/src/kernels/raytracer.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/raytracer.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/raytracer.cpp.o.d"
  "/root/repo/src/kernels/search.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/search.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/search.cpp.o.d"
  "/root/repo/src/kernels/sieve.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/sieve.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/sieve.cpp.o.d"
  "/root/repo/src/kernels/sor.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/sor.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/sor.cpp.o.d"
  "/root/repo/src/kernels/sparse.cpp" "src/kernels/CMakeFiles/hpcnet_kernels.dir/sparse.cpp.o" "gcc" "src/kernels/CMakeFiles/hpcnet_kernels.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpcnet_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

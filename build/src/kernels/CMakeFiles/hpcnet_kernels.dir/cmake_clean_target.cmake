file(REMOVE_RECURSE
  "libhpcnet_kernels.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hpcnet_kernels.dir/crypt.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/crypt.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/euler.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/euler.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/fft.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/fft.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/fib.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/fib.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/hanoi.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/hanoi.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/heapsort.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/heapsort.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/lu.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/lu.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/moldyn.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/moldyn.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/montecarlo.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/montecarlo.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/raytracer.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/raytracer.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/search.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/search.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/sieve.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/sieve.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/sor.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/sor.cpp.o.d"
  "CMakeFiles/hpcnet_kernels.dir/sparse.cpp.o"
  "CMakeFiles/hpcnet_kernels.dir/sparse.cpp.o.d"
  "libhpcnet_kernels.a"
  "libhpcnet_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcnet_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hpcnet_kernels.
# This may be replaced when dependencies are built.

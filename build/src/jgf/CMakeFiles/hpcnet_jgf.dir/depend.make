# Empty dependencies file for hpcnet_jgf.
# This may be replaced when dependencies are built.

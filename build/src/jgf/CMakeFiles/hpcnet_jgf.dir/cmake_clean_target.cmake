file(REMOVE_RECURSE
  "libhpcnet_jgf.a"
)

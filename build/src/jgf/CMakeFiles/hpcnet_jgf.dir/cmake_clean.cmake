file(REMOVE_RECURSE
  "CMakeFiles/hpcnet_jgf.dir/instrumentor.cpp.o"
  "CMakeFiles/hpcnet_jgf.dir/instrumentor.cpp.o.d"
  "libhpcnet_jgf.a"
  "libhpcnet_jgf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcnet_jgf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hpcnet_support.dir/java_random.cpp.o"
  "CMakeFiles/hpcnet_support.dir/java_random.cpp.o.d"
  "CMakeFiles/hpcnet_support.dir/reporter.cpp.o"
  "CMakeFiles/hpcnet_support.dir/reporter.cpp.o.d"
  "CMakeFiles/hpcnet_support.dir/stats.cpp.o"
  "CMakeFiles/hpcnet_support.dir/stats.cpp.o.d"
  "CMakeFiles/hpcnet_support.dir/timer.cpp.o"
  "CMakeFiles/hpcnet_support.dir/timer.cpp.o.d"
  "libhpcnet_support.a"
  "libhpcnet_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcnet_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhpcnet_support.a"
)

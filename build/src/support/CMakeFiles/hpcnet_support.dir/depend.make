# Empty dependencies file for hpcnet_support.
# This may be replaced when dependencies are built.

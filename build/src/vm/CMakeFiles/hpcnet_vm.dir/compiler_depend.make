# Empty compiler generated dependencies file for hpcnet_vm.
# This may be replaced when dependencies are built.

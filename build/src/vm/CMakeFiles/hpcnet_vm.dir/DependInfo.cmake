
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/baseline.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/baseline.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/baseline.cpp.o.d"
  "/root/repo/src/vm/disasm.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/disasm.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/disasm.cpp.o.d"
  "/root/repo/src/vm/execution.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/execution.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/execution.cpp.o.d"
  "/root/repo/src/vm/heap.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/heap.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/heap.cpp.o.d"
  "/root/repo/src/vm/ilbuilder.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/ilbuilder.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/ilbuilder.cpp.o.d"
  "/root/repo/src/vm/interpreter.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/interpreter.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/interpreter.cpp.o.d"
  "/root/repo/src/vm/intrinsics.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/intrinsics.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/intrinsics.cpp.o.d"
  "/root/repo/src/vm/module.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/module.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/module.cpp.o.d"
  "/root/repo/src/vm/monitor.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/monitor.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/monitor.cpp.o.d"
  "/root/repo/src/vm/opcode.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/opcode.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/opcode.cpp.o.d"
  "/root/repo/src/vm/optimizing.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/optimizing.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/optimizing.cpp.o.d"
  "/root/repo/src/vm/regcompile.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/regcompile.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/regcompile.cpp.o.d"
  "/root/repo/src/vm/regir.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/regir.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/regir.cpp.o.d"
  "/root/repo/src/vm/serialize.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/serialize.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/serialize.cpp.o.d"
  "/root/repo/src/vm/unwind.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/unwind.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/unwind.cpp.o.d"
  "/root/repo/src/vm/verifier.cpp" "src/vm/CMakeFiles/hpcnet_vm.dir/verifier.cpp.o" "gcc" "src/vm/CMakeFiles/hpcnet_vm.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hpcnet_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhpcnet_vm.a"
)

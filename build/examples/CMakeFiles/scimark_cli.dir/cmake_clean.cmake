file(REMOVE_RECURSE
  "CMakeFiles/scimark_cli.dir/scimark_cli.cpp.o"
  "CMakeFiles/scimark_cli.dir/scimark_cli.cpp.o.d"
  "scimark_cli"
  "scimark_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scimark_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scimark_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/moldyn_demo.dir/moldyn_demo.cpp.o"
  "CMakeFiles/moldyn_demo.dir/moldyn_demo.cpp.o.d"
  "moldyn_demo"
  "moldyn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldyn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for moldyn_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/jit_explorer.dir/jit_explorer.cpp.o"
  "CMakeFiles/jit_explorer.dir/jit_explorer.cpp.o.d"
  "jit_explorer"
  "jit_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

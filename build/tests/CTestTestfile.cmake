# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_vm_core[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_cil[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_vm_exceptions[1]_include.cmake")
include("/root/repo/build/tests/test_vm_gc[1]_include.cmake")
include("/root/repo/build/tests/test_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_regir[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_vm_threads[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_instrumentor[1]_include.cmake")

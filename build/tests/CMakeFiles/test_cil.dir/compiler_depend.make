# Empty compiler generated dependencies file for test_cil.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cil.dir/test_cil.cpp.o"
  "CMakeFiles/test_cil.dir/test_cil.cpp.o.d"
  "test_cil"
  "test_cil.pdb"
  "test_cil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

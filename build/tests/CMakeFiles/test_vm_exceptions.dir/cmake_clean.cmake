file(REMOVE_RECURSE
  "CMakeFiles/test_vm_exceptions.dir/test_vm_exceptions.cpp.o"
  "CMakeFiles/test_vm_exceptions.dir/test_vm_exceptions.cpp.o.d"
  "test_vm_exceptions"
  "test_vm_exceptions.pdb"
  "test_vm_exceptions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_exceptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

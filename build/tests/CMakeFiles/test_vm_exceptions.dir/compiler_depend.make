# Empty compiler generated dependencies file for test_vm_exceptions.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_vm_threads.
# This may be replaced when dependencies are built.

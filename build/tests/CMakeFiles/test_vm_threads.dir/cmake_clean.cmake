file(REMOVE_RECURSE
  "CMakeFiles/test_vm_threads.dir/test_vm_threads.cpp.o"
  "CMakeFiles/test_vm_threads.dir/test_vm_threads.cpp.o.d"
  "test_vm_threads"
  "test_vm_threads.pdb"
  "test_vm_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

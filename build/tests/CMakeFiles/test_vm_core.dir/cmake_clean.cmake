file(REMOVE_RECURSE
  "CMakeFiles/test_vm_core.dir/test_vm_core.cpp.o"
  "CMakeFiles/test_vm_core.dir/test_vm_core.cpp.o.d"
  "test_vm_core"
  "test_vm_core.pdb"
  "test_vm_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_vm_core.
# This may be replaced when dependencies are built.

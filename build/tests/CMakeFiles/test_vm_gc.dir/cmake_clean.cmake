file(REMOVE_RECURSE
  "CMakeFiles/test_vm_gc.dir/test_vm_gc.cpp.o"
  "CMakeFiles/test_vm_gc.dir/test_vm_gc.cpp.o.d"
  "test_vm_gc"
  "test_vm_gc.pdb"
  "test_vm_gc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_vm_gc.
# This may be replaced when dependencies are built.

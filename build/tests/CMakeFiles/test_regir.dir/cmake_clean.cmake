file(REMOVE_RECURSE
  "CMakeFiles/test_regir.dir/test_regir.cpp.o"
  "CMakeFiles/test_regir.dir/test_regir.cpp.o.d"
  "test_regir"
  "test_regir.pdb"
  "test_regir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

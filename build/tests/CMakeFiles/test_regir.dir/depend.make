# Empty dependencies file for test_regir.
# This may be replaced when dependencies are built.

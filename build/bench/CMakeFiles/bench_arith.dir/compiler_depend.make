# Empty compiler generated dependencies file for bench_arith.
# This may be replaced when dependencies are built.

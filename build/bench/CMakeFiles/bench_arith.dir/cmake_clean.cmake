file(REMOVE_RECURSE
  "CMakeFiles/bench_arith.dir/bench_arith.cpp.o"
  "CMakeFiles/bench_arith.dir/bench_arith.cpp.o.d"
  "bench_arith"
  "bench_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

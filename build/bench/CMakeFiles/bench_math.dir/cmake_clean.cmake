file(REMOVE_RECURSE
  "CMakeFiles/bench_math.dir/bench_math.cpp.o"
  "CMakeFiles/bench_math.dir/bench_math.cpp.o.d"
  "bench_math"
  "bench_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_math.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_loop.dir/bench_loop.cpp.o"
  "CMakeFiles/bench_loop.dir/bench_loop.cpp.o.d"
  "bench_loop"
  "bench_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_loop.
# This may be replaced when dependencies are built.

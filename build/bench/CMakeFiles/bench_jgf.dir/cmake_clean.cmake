file(REMOVE_RECURSE
  "CMakeFiles/bench_jgf.dir/bench_jgf.cpp.o"
  "CMakeFiles/bench_jgf.dir/bench_jgf.cpp.o.d"
  "bench_jgf"
  "bench_jgf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jgf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

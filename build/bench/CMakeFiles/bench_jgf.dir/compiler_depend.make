# Empty compiler generated dependencies file for bench_jgf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_bce.dir/bench_bce.cpp.o"
  "CMakeFiles/bench_bce.dir/bench_bce.cpp.o.d"
  "bench_bce"
  "bench_bce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_bce.
# This may be replaced when dependencies are built.

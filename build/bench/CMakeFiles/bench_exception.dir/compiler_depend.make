# Empty compiler generated dependencies file for bench_exception.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_exception.dir/bench_exception.cpp.o"
  "CMakeFiles/bench_exception.dir/bench_exception.cpp.o.d"
  "bench_exception"
  "bench_exception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

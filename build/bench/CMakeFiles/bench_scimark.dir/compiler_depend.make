# Empty compiler generated dependencies file for bench_scimark.
# This may be replaced when dependencies are built.

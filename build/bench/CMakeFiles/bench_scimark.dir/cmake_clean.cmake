file(REMOVE_RECURSE
  "CMakeFiles/bench_scimark.dir/bench_scimark.cpp.o"
  "CMakeFiles/bench_scimark.dir/bench_scimark.cpp.o.d"
  "bench_scimark"
  "bench_scimark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scimark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

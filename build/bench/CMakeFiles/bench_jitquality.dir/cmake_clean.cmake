file(REMOVE_RECURSE
  "CMakeFiles/bench_jitquality.dir/bench_jitquality.cpp.o"
  "CMakeFiles/bench_jitquality.dir/bench_jitquality.cpp.o.d"
  "bench_jitquality"
  "bench_jitquality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jitquality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

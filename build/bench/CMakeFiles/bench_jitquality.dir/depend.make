# Empty dependencies file for bench_jitquality.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_matrix.cpp" "bench/CMakeFiles/bench_matrix.dir/bench_matrix.cpp.o" "gcc" "bench/CMakeFiles/bench_matrix.dir/bench_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hpcnet_paper_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/cil/CMakeFiles/hpcnet_cil.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hpcnet_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hpcnet_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/jgf/CMakeFiles/hpcnet_jgf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hpcnet_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_matrix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpcnet_paper_bench.dir/paper_bench.cpp.o"
  "CMakeFiles/hpcnet_paper_bench.dir/paper_bench.cpp.o.d"
  "libhpcnet_paper_bench.a"
  "libhpcnet_paper_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcnet_paper_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

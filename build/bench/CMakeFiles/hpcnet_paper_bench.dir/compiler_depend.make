# Empty compiler generated dependencies file for hpcnet_paper_bench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhpcnet_paper_bench.a"
)
